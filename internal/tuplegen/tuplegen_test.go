package tuplegen

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pipesched/internal/frontend"
	"pipesched/internal/ir"
)

func TestFigure3Lowering(t *testing.T) {
	// The paper's Figure 3: "b = 15; a = b * a;" lowers to exactly
	//   1: Const 15
	//   2: Store #b, @1
	//   3: Load #a
	//   4: Mul @1, @3
	//   5: Store #a, @4
	b, err := Compile("b = 15;\na = b * a;", "fig3")
	if err != nil {
		t.Fatal(err)
	}
	want := strings.TrimSpace(`fig3:
  1: Const 15
  2: Store #b, @1
  3: Load #a
  4: Mul @1, @3
  5: Store #a, @4`)
	if got := strings.TrimSpace(b.String()); got != want {
		t.Errorf("lowering mismatch:\n%s\nwant:\n%s", got, want)
	}
}

func TestLoadOnFirstUseOnly(t *testing.T) {
	b, err := Compile("x = a + a;\ny = a - x;", "once")
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	for _, tp := range b.Tuples {
		if tp.Op == ir.Load {
			loads++
		}
	}
	if loads != 1 {
		t.Errorf("variable 'a' loaded %d times, want 1", loads)
	}
}

func TestAssignmentRebindsWithoutReload(t *testing.T) {
	// After "a = ...", reading a must reuse the computed value, not
	// reload from memory.
	b, err := Compile("a = b + 1;\nc = a * 2;", "rebind")
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range b.Tuples {
		if tp.Op == ir.Load && tp.A.Var == "a" {
			t.Errorf("reload of assigned variable 'a':\n%s", b)
		}
	}
}

func TestUnaryAndAllOperators(t *testing.T) {
	b, err := Compile("r = -(a + b) * (c - d) / e % f;", "ops")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[ir.Op]bool{}
	for _, tp := range b.Tuples {
		seen[tp.Op] = true
	}
	for _, op := range []ir.Op{ir.Neg, ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod, ir.Load, ir.Store} {
		if !seen[op] {
			t.Errorf("operator %v missing from lowering:\n%s", op, b)
		}
	}
}

func TestGeneratedBlocksValidate(t *testing.T) {
	srcs := []string{
		"x = 1;",
		"x = y;",
		"x = x;",
		"a = b; b = a; a = b;",
		"q = (((1)));",
	}
	for _, src := range srcs {
		b, err := Compile(src, "v")
		if err != nil {
			t.Errorf("Compile(%q): %v", src, err)
			continue
		}
		if err := b.Validate(); err != nil {
			t.Errorf("Compile(%q) produced invalid block: %v", src, err)
		}
	}
}

func TestCompileParseError(t *testing.T) {
	if _, err := Compile("x = ", "bad"); err == nil {
		t.Error("Compile of bad source succeeded")
	}
}

// randomProgram builds a random but division-safe source program.
func randomProgram(rng *rand.Rand, stmts int) string {
	vars := []string{"a", "b", "c", "d", "e"}
	var sb strings.Builder
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth <= 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return vars[rng.Intn(len(vars))]
			}
			return string(rune('1' + rng.Intn(9)))
		}
		ops := []string{"+", "-", "*"}
		op := ops[rng.Intn(len(ops))]
		// Keep division safe by only dividing by nonzero literals.
		if rng.Intn(4) == 0 {
			return "(" + expr(depth-1) + ") / " + string(rune('1'+rng.Intn(9)))
		}
		if rng.Intn(5) == 0 {
			return "-(" + expr(depth-1) + ")"
		}
		return "(" + expr(depth-1) + " " + op + " " + expr(depth-1) + ")"
	}
	for i := 0; i < stmts; i++ {
		sb.WriteString(vars[rng.Intn(len(vars))])
		sb.WriteString(" = ")
		sb.WriteString(expr(3))
		sb.WriteString(";\n")
	}
	return sb.String()
}

// TestLoweringPreservesSemanticsProperty: the tuple interpretation of the
// lowered block must leave memory exactly as AST evaluation does.
func TestLoweringPreservesSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomProgram(rng, 1+rng.Intn(8))
		prog, err := frontend.Parse(src)
		if err != nil {
			return false
		}
		block, err := Generate(prog, "p")
		if err != nil {
			return false
		}
		envAST := map[string]int64{"a": 2, "b": -3, "c": 7, "d": 0, "e": 11}
		envIR := ir.Env{"a": 2, "b": -3, "c": 7, "d": 0, "e": 11}
		if err := prog.Eval(envAST); err != nil {
			return true // runtime fault; both would fault
		}
		if _, err := ir.Exec(block, envIR); err != nil {
			return false
		}
		for k, v := range envAST {
			if envIR[k] != v {
				return false
			}
		}
		return len(envAST) == len(envIR)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
