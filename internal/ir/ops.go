// Package ir defines the tuple intermediate form scheduled by pipesched.
//
// Each instruction is a tuple (ID, Op, A, B) exactly as in the paper
// (section 3.1): ID is the tuple reference number, Op the operation type,
// and A and B the two operands. An operand is a variable name, the result
// of another tuple (named by its reference number), an immediate constant,
// or absent. At this level no registers have been assigned — values flow
// through tuple references, which is what lets the scheduler reorder code
// without artificial register-reuse conflicts.
package ir

import "fmt"

// Op is a tuple operation type.
type Op uint8

// Operation types. The set mirrors the paper's examples (Const, Load,
// Store, Add, Sub, Mul, Div) plus Neg and Mod so that the front end can
// express unary minus and remainder, and Nop for explicit padding.
const (
	Invalid Op = iota
	Nop        // null operation: pipeline filler, never interferes
	Const      // materialize an immediate constant (operand A = Imm)
	Load       // load variable named by A
	Store      // store value B into variable named by A
	Add        // A + B
	Sub        // A - B
	Mul        // A * B
	Div        // A / B
	Mod        // A % B
	Neg        // -A

	numOps
)

var opNames = [numOps]string{
	Invalid: "Invalid",
	Nop:     "Nop",
	Const:   "Const",
	Load:    "Load",
	Store:   "Store",
	Add:     "Add",
	Sub:     "Sub",
	Mul:     "Mul",
	Div:     "Div",
	Mod:     "Mod",
	Neg:     "Neg",
}

// String returns the canonical mnemonic for o.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation type.
func (o Op) Valid() bool { return o > Invalid && o < numOps }

// ParseOp converts a mnemonic back to an Op. The match is exact
// (case-sensitive), mirroring the textual tuple format.
func ParseOp(s string) (Op, error) {
	for o, name := range opNames {
		if name == s && Op(o) != Invalid {
			return Op(o), nil
		}
	}
	return Invalid, fmt.Errorf("ir: unknown operation %q", s)
}

// ProducesValue reports whether tuples with operation o yield a result
// that other tuples may reference.
func (o Op) ProducesValue() bool {
	switch o {
	case Const, Load, Add, Sub, Mul, Div, Mod, Neg:
		return true
	}
	return false
}

// IsArith reports whether o is a pure arithmetic operation.
func (o Op) IsArith() bool {
	switch o {
	case Add, Sub, Mul, Div, Mod, Neg:
		return true
	}
	return false
}

// IsCommutative reports whether o's operands may be exchanged.
func (o Op) IsCommutative() bool { return o == Add || o == Mul }

// NumOperands returns how many operands tuples with operation o carry.
func (o Op) NumOperands() int {
	switch o {
	case Nop:
		return 0
	case Const, Load, Neg:
		return 1
	case Store, Add, Sub, Mul, Div, Mod:
		return 2
	}
	return 0
}

// TouchesMemory reports whether o reads or writes a named variable.
func (o Op) TouchesMemory() bool { return o == Load || o == Store }

// AllOps returns every defined operation type, in declaration order.
// The slice is freshly allocated on each call.
func AllOps() []Op {
	ops := make([]Op, 0, int(numOps)-1)
	for o := Nop; o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}
