package ir

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The textual tuple format, one tuple per line:
//
//	label:
//	  1: Const 15
//	  2: Store #b, @1
//	  3: Load #a
//	  4: Mul @1, @3
//	  5: Store #a, @4
//
// Operands: "#name" is a variable, "@n" a tuple reference, a bare integer
// an immediate, and "_" the absent operand. Lines beginning with ';' or
// '//' are comments. Blank lines separate blocks.

// WriteBlock writes b in the textual tuple format.
func WriteBlock(w io.Writer, b *Block) error {
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatBlocks renders a sequence of blocks separated by blank lines.
func FormatBlocks(blocks []*Block) string {
	var sb strings.Builder
	for i, b := range blocks {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(b.String())
	}
	return sb.String()
}

// ParseBlocks reads any number of blocks in the textual tuple format.
// Every parsed block is validated before being returned.
func ParseBlocks(r io.Reader) ([]*Block, error) {
	var (
		blocks []*Block
		cur    *Block
		lineNo int
	)
	flush := func() error {
		if cur == nil {
			return nil
		}
		if err := cur.Validate(); err != nil {
			return fmt.Errorf("block %q: %w", cur.Label, err)
		}
		blocks = append(blocks, cur)
		cur = nil
		return nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(line, ";") || strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.ContainsAny(strings.TrimSuffix(line, ":"), " \t") {
			// A bare "name:" line starts a new labeled block, unless it
			// parses as a tuple header (digits only), which it cannot:
			// tuple lines always carry an op after the colon.
			label := strings.TrimSuffix(line, ":")
			if label == "" {
				return nil, fmt.Errorf("line %d: empty block label", lineNo)
			}
			if err := flush(); err != nil {
				return nil, err
			}
			cur = NewBlock(label)
			continue
		}
		if cur == nil {
			cur = NewBlock("")
		}
		t, err := ParseTuple(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		cur.Tuples = append(cur.Tuples, t)
		cur.index = nil
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return blocks, nil
}

// ParseBlock parses exactly one block from s.
func ParseBlock(s string) (*Block, error) {
	blocks, err := ParseBlocks(strings.NewReader(s))
	if err != nil {
		return nil, err
	}
	if len(blocks) != 1 {
		return nil, fmt.Errorf("ir: expected exactly one block, found %d", len(blocks))
	}
	return blocks[0], nil
}

// ParseTuple parses a single tuple line such as "4: Mul @1, @3".
func ParseTuple(line string) (Tuple, error) {
	colon := strings.Index(line, ":")
	if colon < 0 {
		return Tuple{}, fmt.Errorf("ir: tuple line %q lacks 'id:' prefix", line)
	}
	id, err := strconv.Atoi(strings.TrimSpace(line[:colon]))
	if err != nil {
		return Tuple{}, fmt.Errorf("ir: bad tuple ID in %q: %w", line, err)
	}
	rest := strings.TrimSpace(line[colon+1:])
	if rest == "" {
		return Tuple{}, fmt.Errorf("ir: tuple %d has no operation", id)
	}
	fields := strings.SplitN(rest, " ", 2)
	op, err := ParseOp(fields[0])
	if err != nil {
		return Tuple{}, err
	}
	t := Tuple{ID: id, Op: op}
	var operands []string
	if len(fields) == 2 {
		for _, part := range strings.Split(fields[1], ",") {
			operands = append(operands, strings.TrimSpace(part))
		}
	}
	if len(operands) != op.NumOperands() {
		return Tuple{}, fmt.Errorf("ir: tuple %d: %s expects %d operands, got %d",
			id, op, op.NumOperands(), len(operands))
	}
	if len(operands) >= 1 {
		if t.A, err = ParseOperand(operands[0]); err != nil {
			return Tuple{}, fmt.Errorf("ir: tuple %d: %w", id, err)
		}
	}
	if len(operands) >= 2 {
		if t.B, err = ParseOperand(operands[1]); err != nil {
			return Tuple{}, fmt.Errorf("ir: tuple %d: %w", id, err)
		}
	}
	return t, nil
}

// ParseOperand parses one operand in the textual syntax.
func ParseOperand(s string) (Operand, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "" || s == "_":
		return None(), nil
	case strings.HasPrefix(s, "#"):
		name := s[1:]
		if name == "" {
			return Operand{}, fmt.Errorf("empty variable name")
		}
		return Var(name), nil
	case strings.HasPrefix(s, "@"):
		n, err := strconv.Atoi(s[1:])
		if err != nil {
			return Operand{}, fmt.Errorf("bad tuple reference %q: %w", s, err)
		}
		return Ref(n), nil
	default:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("bad operand %q", s)
		}
		return Imm(v), nil
	}
}
