package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func figure3Block(t *testing.T) *Block {
	t.Helper()
	b := NewBlock("fig3")
	c := b.Append(Const, Imm(15), None())
	b.Append(Store, Var("b"), Ref(c))
	l := b.Append(Load, Var("a"), None())
	m := b.Append(Mul, Ref(c), Ref(l))
	b.Append(Store, Var("a"), Ref(m))
	if err := b.Validate(); err != nil {
		t.Fatalf("figure 3 block invalid: %v", err)
	}
	return b
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		Nop: "Nop", Const: "Const", Load: "Load", Store: "Store",
		Add: "Add", Sub: "Sub", Mul: "Mul", Div: "Div", Mod: "Mod", Neg: "Neg",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(op), got, want)
		}
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op String() = %q", got)
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	for _, op := range AllOps() {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if got != op {
			t.Errorf("ParseOp(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if _, err := ParseOp("Bogus"); err == nil {
		t.Error("ParseOp(Bogus) succeeded, want error")
	}
	if _, err := ParseOp("Invalid"); err == nil {
		t.Error("ParseOp(Invalid) succeeded, want error")
	}
}

func TestOpPredicates(t *testing.T) {
	if Store.ProducesValue() || Nop.ProducesValue() {
		t.Error("Store/Nop must not produce values")
	}
	for _, op := range []Op{Const, Load, Add, Sub, Mul, Div, Mod, Neg} {
		if !op.ProducesValue() {
			t.Errorf("%v should produce a value", op)
		}
	}
	if !Add.IsCommutative() || !Mul.IsCommutative() {
		t.Error("Add and Mul are commutative")
	}
	if Sub.IsCommutative() || Div.IsCommutative() {
		t.Error("Sub and Div are not commutative")
	}
	if !Load.TouchesMemory() || !Store.TouchesMemory() || Add.TouchesMemory() {
		t.Error("memory predicate wrong")
	}
	wantOperands := map[Op]int{Nop: 0, Const: 1, Load: 1, Neg: 1, Store: 2, Add: 2, Mod: 2}
	for op, n := range wantOperands {
		if got := op.NumOperands(); got != n {
			t.Errorf("%v.NumOperands() = %d, want %d", op, got, n)
		}
	}
}

func TestOperandString(t *testing.T) {
	cases := []struct {
		op   Operand
		want string
	}{
		{None(), "_"},
		{Var("x"), "#x"},
		{Ref(7), "@7"},
		{Imm(-3), "-3"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestBlockAppendAndLookup(t *testing.T) {
	b := figure3Block(t)
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
	if b.NextID() != 6 {
		t.Errorf("NextID = %d, want 6", b.NextID())
	}
	for i, tp := range b.Tuples {
		if pos := b.Pos(tp.ID); pos != i {
			t.Errorf("Pos(%d) = %d, want %d", tp.ID, pos, i)
		}
		if got := b.ByID(tp.ID); got != tp {
			t.Errorf("ByID(%d) = %v, want %v", tp.ID, got, tp)
		}
	}
	if b.Pos(99) != -1 {
		t.Error("Pos of missing ID should be -1")
	}
}

func TestByIDPanicsOnMissing(t *testing.T) {
	b := figure3Block(t)
	defer func() {
		if recover() == nil {
			t.Error("ByID(missing) did not panic")
		}
	}()
	b.ByID(42)
}

func TestPosAfterInPlacePermutation(t *testing.T) {
	b := figure3Block(t)
	_ = b.Pos(1) // force index build
	b.Tuples[0], b.Tuples[2] = b.Tuples[2], b.Tuples[0]
	b.InvalidateIndex()
	if got := b.Pos(3); got != 0 {
		t.Errorf("after swap, Pos(3) = %d, want 0", got)
	}
	if got := b.Pos(1); got != 2 {
		t.Errorf("after swap, Pos(1) = %d, want 2", got)
	}
}

func TestBlockVars(t *testing.T) {
	b := figure3Block(t)
	vars := b.Vars()
	if len(vars) != 2 || vars[0] != "a" || vars[1] != "b" {
		t.Errorf("Vars = %v, want [a b]", vars)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Block)
	}{
		{"forward ref", func(b *Block) {
			b.Tuples = append(b.Tuples, Tuple{ID: 9, Op: Neg, A: Ref(10)})
		}},
		{"duplicate id", func(b *Block) {
			b.Tuples = append(b.Tuples, Tuple{ID: 1, Op: Load, A: Var("z")})
		}},
		{"ref to non-value", func(b *Block) {
			// tuple 2 is a Store: referencing it is illegal
			b.Tuples = append(b.Tuples, Tuple{ID: 9, Op: Neg, A: Ref(2)})
		}},
		{"bad shape const", func(b *Block) {
			b.Tuples = append(b.Tuples, Tuple{ID: 9, Op: Const, A: Var("x")})
		}},
		{"bad shape store", func(b *Block) {
			b.Tuples = append(b.Tuples, Tuple{ID: 9, Op: Store, A: Var("x"), B: Var("y")})
		}},
		{"bad shape nop", func(b *Block) {
			b.Tuples = append(b.Tuples, Tuple{ID: 9, Op: Nop, A: Imm(1)})
		}},
		{"zero id", func(b *Block) {
			b.Tuples = append(b.Tuples, Tuple{ID: 0, Op: Load, A: Var("z")})
		}},
		{"invalid op", func(b *Block) {
			b.Tuples = append(b.Tuples, Tuple{ID: 9, Op: Invalid})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := figure3Block(t)
			c.mod(b)
			b.InvalidateIndex()
			if err := b.Validate(); err == nil {
				t.Errorf("Validate accepted malformed block (%s)", c.name)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := figure3Block(t)
	c := b.Clone()
	c.Tuples[0].Op = Load
	c.Tuples[0].A = Var("q")
	if b.Tuples[0].Op != Const {
		t.Error("Clone shares tuple storage with original")
	}
}

func TestPermute(t *testing.T) {
	b := figure3Block(t)
	// Reverse order is NOT a valid program (refs go forward), but Permute
	// only rearranges; semantic checking is the DAG's job.
	order := []int{4, 3, 2, 1, 0}
	nb, err := b.Permute(order)
	if err != nil {
		t.Fatalf("Permute: %v", err)
	}
	for k := range order {
		if nb.Tuples[k].ID != b.Tuples[order[k]].ID {
			t.Errorf("position %d: got ID %d, want %d", k, nb.Tuples[k].ID, b.Tuples[order[k]].ID)
		}
	}
	if _, err := b.Permute([]int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := b.Permute([]int{0, 0, 1, 2, 3}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := b.Permute([]int{0, 1, 2, 3, 7}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}

func TestTupleStringForms(t *testing.T) {
	cases := []struct {
		tp   Tuple
		want string
	}{
		{Tuple{ID: 1, Op: Nop}, "1: Nop"},
		{Tuple{ID: 2, Op: Const, A: Imm(15)}, "2: Const 15"},
		{Tuple{ID: 3, Op: Load, A: Var("a")}, "3: Load #a"},
		{Tuple{ID: 4, Op: Mul, A: Ref(2), B: Ref(3)}, "4: Mul @2, @3"},
		{Tuple{ID: 5, Op: Store, A: Var("a"), B: Ref(4)}, "5: Store #a, @4"},
	}
	for _, c := range cases {
		if got := c.tp.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseTupleRoundTrip(t *testing.T) {
	b := figure3Block(t)
	for _, tp := range b.Tuples {
		got, err := ParseTuple(tp.String())
		if err != nil {
			t.Fatalf("ParseTuple(%q): %v", tp.String(), err)
		}
		if got != tp {
			t.Errorf("round trip %q: got %v", tp.String(), got)
		}
	}
}

func TestParseTupleErrors(t *testing.T) {
	bad := []string{
		"no colon here",
		"x: Load #a",
		"1:",
		"1: Bogus #a",
		"1: Load",
		"1: Load #a, #b",
		"1: Load #",
		"1: Mul @x, @2",
		"1: Add foo, @2",
	}
	for _, s := range bad {
		if _, err := ParseTuple(s); err == nil {
			t.Errorf("ParseTuple(%q) succeeded, want error", s)
		}
	}
}

func TestParseBlockRoundTrip(t *testing.T) {
	b := figure3Block(t)
	parsed, err := ParseBlock(b.String())
	if err != nil {
		t.Fatalf("ParseBlock: %v", err)
	}
	if parsed.Label != "fig3" {
		t.Errorf("label = %q, want fig3", parsed.Label)
	}
	if parsed.String() != b.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", parsed.String(), b.String())
	}
}

func TestParseBlocksMultiple(t *testing.T) {
	src := `
; a comment
one:
  1: Load #a
  2: Store #b, @1

// another comment
two:
  1: Const 4
  2: Const 5
  3: Add @1, @2
  4: Store #c, @3
`
	blocks, err := ParseBlocks(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseBlocks: %v", err)
	}
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blocks))
	}
	if blocks[0].Label != "one" || blocks[1].Label != "two" {
		t.Errorf("labels = %q, %q", blocks[0].Label, blocks[1].Label)
	}
	if blocks[1].Len() != 4 {
		t.Errorf("block two has %d tuples, want 4", blocks[1].Len())
	}
}

func TestParseBlocksRejectsInvalid(t *testing.T) {
	src := "bad:\n  1: Mul @2, @3\n"
	if _, err := ParseBlocks(strings.NewReader(src)); err == nil {
		t.Error("forward reference accepted by ParseBlocks")
	}
}

func TestParseUnlabeledBlock(t *testing.T) {
	b, err := ParseBlock("1: Load #a\n2: Store #b, @1\n")
	if err != nil {
		t.Fatalf("ParseBlock: %v", err)
	}
	if b.Label != "" || b.Len() != 2 {
		t.Errorf("got label %q len %d", b.Label, b.Len())
	}
}

func TestFormatBlocksSeparatesWithBlankLine(t *testing.T) {
	a := figure3Block(t)
	b := figure3Block(t)
	b.Label = "second"
	out := FormatBlocks([]*Block{a, b})
	parsed, err := ParseBlocks(strings.NewReader(out))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(parsed) != 2 {
		t.Fatalf("reparsed %d blocks, want 2", len(parsed))
	}
}

func TestOperandParseRoundTripProperty(t *testing.T) {
	f := func(ref uint16, imm int64, pick uint8) bool {
		var op Operand
		switch pick % 4 {
		case 0:
			op = None()
		case 1:
			op = Var("v" + string(rune('a'+ref%26)))
		case 2:
			op = Ref(int(ref) + 1)
		case 3:
			op = Imm(imm)
		}
		back, err := ParseOperand(op.String())
		return err == nil && back == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRefsAndMemVar(t *testing.T) {
	b := figure3Block(t)
	if refs := b.ByID(4).Refs(); len(refs) != 2 || refs[0] != 1 || refs[1] != 3 {
		t.Errorf("tuple 4 Refs = %v, want [1 3]", refs)
	}
	if mv := b.ByID(3).MemVar(); mv != "a" {
		t.Errorf("tuple 3 MemVar = %q, want a", mv)
	}
	if mv := b.ByID(4).MemVar(); mv != "" {
		t.Errorf("tuple 4 MemVar = %q, want empty", mv)
	}
	if !b.ByID(3).ReadsVar("a") || b.ByID(3).ReadsVar("b") {
		t.Error("ReadsVar wrong")
	}
	if !b.ByID(2).WritesVar("b") || b.ByID(2).WritesVar("a") {
		t.Error("WritesVar wrong")
	}
}

func TestConcat(t *testing.T) {
	a, err := ParseBlock("a:\n  1: Load #x\n  2: Store #y, @1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseBlock("b:\n  1: Load #y\n  2: Neg @1\n  3: Store #z, @2")
	if err != nil {
		t.Fatal(err)
	}
	joined, err := Concat("seq", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 5 {
		t.Fatalf("joined has %d tuples", joined.Len())
	}
	if err := joined.Validate(); err != nil {
		t.Fatal(err)
	}
	// IDs renumbered sequentially; refs remapped.
	if joined.Tuples[3].A.Ref != joined.Tuples[2].ID {
		t.Errorf("ref not remapped: %v", joined.Tuples[3])
	}
	// Semantics: same as executing the blocks in order.
	env1 := Env{"x": 7}
	if _, err := Exec(a, env1); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(b, env1); err != nil {
		t.Fatal(err)
	}
	env2 := Env{"x": 7}
	if _, err := Exec(joined, env2); err != nil {
		t.Fatal(err)
	}
	for k, v := range env1 {
		if env2[k] != v {
			t.Errorf("concat semantics: %s = %d, want %d", k, env2[k], v)
		}
	}
}

func TestConcatEmptyAndSingle(t *testing.T) {
	empty, err := Concat("e")
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty concat: %v, %v", empty, err)
	}
	a := figure3Block(t)
	one, err := Concat("one", a)
	if err != nil || one.Len() != a.Len() {
		t.Errorf("single concat: %v", err)
	}
}

func TestWriteBlock(t *testing.T) {
	var sb strings.Builder
	b := figure3Block(t)
	if err := WriteBlock(&sb, b); err != nil {
		t.Fatal(err)
	}
	if sb.String() != b.String() {
		t.Error("WriteBlock differs from String")
	}
}

func TestExecErrors(t *testing.T) {
	// Division by zero.
	b, err := ParseBlock("d:\n  1: Const 0\n  2: Div 1, @1\n  3: Store #x, @2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(b, Env{}); err == nil {
		t.Error("div by zero unreported")
	}
	// Remainder by zero.
	b2, err := ParseBlock("m:\n  1: Const 0\n  2: Mod 1, @1\n  3: Store #x, @2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(b2, Env{}); err == nil {
		t.Error("mod by zero unreported")
	}
	// Reference to a tuple that was never executed (hand-built bad block).
	bad := NewBlock("bad")
	bad.Tuples = append(bad.Tuples,
		Tuple{ID: 2, Op: Neg, A: Ref(1)},
		Tuple{ID: 3, Op: Store, A: Var("x"), B: Ref(2)})
	if _, err := Exec(bad, Env{}); err == nil {
		t.Error("dangling ref unreported")
	}
}

func TestExecValuesReturned(t *testing.T) {
	b := figure3Block(t)
	env := Env{"a": 3}
	vals, err := Exec(b, env)
	if err != nil {
		t.Fatal(err)
	}
	if vals[1] != 15 || vals[4] != 45 {
		t.Errorf("vals = %v", vals)
	}
	if env["a"] != 45 || env["b"] != 15 {
		t.Errorf("env = %v", env)
	}
}

func TestEnvClone(t *testing.T) {
	e := Env{"x": 1}
	c := e.Clone()
	c["x"] = 2
	if e["x"] != 1 {
		t.Error("Clone not independent")
	}
}

func TestExecNopAndUnknownOp(t *testing.T) {
	b := NewBlock("n")
	b.Tuples = append(b.Tuples, Tuple{ID: 1, Op: Nop})
	if _, err := Exec(b, Env{}); err != nil {
		t.Errorf("Nop execution failed: %v", err)
	}
	bad := NewBlock("u")
	bad.Tuples = append(bad.Tuples, Tuple{ID: 1, Op: Op(200)})
	if _, err := Exec(bad, Env{}); err == nil {
		t.Error("unknown op unreported")
	}
}
