package ir

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrInvalidBlock is wrapped by every error reporting a structurally
// invalid tuple block, so callers can classify with errors.Is.
var ErrInvalidBlock = errors.New("ir: invalid block")

// OperandKind discriminates the four operand forms of a tuple.
type OperandKind uint8

const (
	// NoOperand marks an absent operand (∅ in the paper's notation).
	NoOperand OperandKind = iota
	// VarOperand names a program variable ("#x" in the textual form).
	VarOperand
	// RefOperand names the result of another tuple by reference number
	// ("@n" in the textual form).
	RefOperand
	// ImmOperand is an immediate integer constant.
	ImmOperand
)

// String returns a short name for the operand kind.
func (k OperandKind) String() string {
	switch k {
	case NoOperand:
		return "none"
	case VarOperand:
		return "var"
	case RefOperand:
		return "ref"
	case ImmOperand:
		return "imm"
	}
	return fmt.Sprintf("OperandKind(%d)", uint8(k))
}

// Operand is one operand slot of a tuple.
type Operand struct {
	Kind OperandKind
	Var  string // variable name, when Kind == VarOperand
	Ref  int    // tuple reference number, when Kind == RefOperand
	Imm  int64  // immediate value, when Kind == ImmOperand
}

// None returns the absent operand.
func None() Operand { return Operand{} }

// Var returns a variable operand naming v.
func Var(v string) Operand { return Operand{Kind: VarOperand, Var: v} }

// Ref returns an operand referencing the result of tuple id.
func Ref(id int) Operand { return Operand{Kind: RefOperand, Ref: id} }

// Imm returns an immediate-constant operand.
func Imm(v int64) Operand { return Operand{Kind: ImmOperand, Imm: v} }

// IsNone reports whether the operand slot is empty.
func (o Operand) IsNone() bool { return o.Kind == NoOperand }

// String renders the operand in the textual tuple syntax.
func (o Operand) String() string {
	switch o.Kind {
	case NoOperand:
		return "_"
	case VarOperand:
		return "#" + o.Var
	case RefOperand:
		return fmt.Sprintf("@%d", o.Ref)
	case ImmOperand:
		return fmt.Sprintf("%d", o.Imm)
	}
	return "?"
}

// Equal reports structural equality of two operands.
func (o Operand) Equal(p Operand) bool { return o == p }

// Tuple is one instruction of the intermediate form: ⟨ID, Op, A, B⟩.
type Tuple struct {
	ID int // reference number; unique and stable within a Block
	Op Op
	A  Operand
	B  Operand
}

// String renders the tuple in the textual form, e.g. "4: Mul @1, @3".
func (t Tuple) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d: %s", t.ID, t.Op)
	n := t.Op.NumOperands()
	if n >= 1 {
		sb.WriteString(" ")
		sb.WriteString(t.A.String())
	}
	if n >= 2 {
		sb.WriteString(", ")
		sb.WriteString(t.B.String())
	}
	return sb.String()
}

// Operands returns the tuple's used operand slots (0, 1 or 2 entries).
func (t Tuple) Operands() []Operand {
	switch t.Op.NumOperands() {
	case 1:
		return []Operand{t.A}
	case 2:
		return []Operand{t.A, t.B}
	}
	return nil
}

// Refs returns the tuple reference numbers this tuple's operands read,
// in operand order.
func (t Tuple) Refs() []int {
	var refs []int
	for _, op := range t.Operands() {
		if op.Kind == RefOperand {
			refs = append(refs, op.Ref)
		}
	}
	return refs
}

// ReadsVar reports whether the tuple reads the value of variable v from
// memory (only Load does).
func (t Tuple) ReadsVar(v string) bool {
	return t.Op == Load && t.A.Kind == VarOperand && t.A.Var == v
}

// WritesVar reports whether the tuple writes variable v (only Store does).
func (t Tuple) WritesVar(v string) bool {
	return t.Op == Store && t.A.Kind == VarOperand && t.A.Var == v
}

// MemVar returns the variable a Load or Store touches, or "" for other ops.
func (t Tuple) MemVar() string {
	if t.Op.TouchesMemory() && t.A.Kind == VarOperand {
		return t.A.Var
	}
	return ""
}

// Block is a basic block: a label plus an ordered sequence of tuples.
// Tuple order in the slice is program order; tuple IDs are stable names
// that survive reordering by the scheduler.
type Block struct {
	Label  string
	Tuples []Tuple

	index map[int]int // tuple ID -> slice position (lazily built)
}

// NewBlock returns an empty block with the given label.
func NewBlock(label string) *Block { return &Block{Label: label} }

// Len returns the number of tuples in the block.
func (b *Block) Len() int { return len(b.Tuples) }

// Append adds a tuple with the next free reference number and the given
// operation and operands, returning its ID.
func (b *Block) Append(op Op, a, bo Operand) int {
	id := b.NextID()
	b.Tuples = append(b.Tuples, Tuple{ID: id, Op: op, A: a, B: bo})
	b.index = nil
	return id
}

// NextID returns the smallest reference number strictly greater than any
// tuple ID already in the block (IDs start at 1).
func (b *Block) NextID() int {
	max := 0
	for _, t := range b.Tuples {
		if t.ID > max {
			max = t.ID
		}
	}
	return max + 1
}

// buildIndex (re)builds the ID→position map.
func (b *Block) buildIndex() {
	b.index = make(map[int]int, len(b.Tuples))
	for i, t := range b.Tuples {
		b.index[t.ID] = i
	}
}

// Pos returns the current position of tuple id within the block, or -1 if
// no tuple has that ID. Positions are 0-based.
func (b *Block) Pos(id int) int {
	if b.index == nil || len(b.index) != len(b.Tuples) {
		b.buildIndex()
	}
	if i, ok := b.index[id]; ok && i < len(b.Tuples) && b.Tuples[i].ID == id {
		return i
	}
	// Index may be stale after external reordering; rebuild once.
	b.buildIndex()
	if i, ok := b.index[id]; ok {
		return i
	}
	return -1
}

// ByID returns the tuple with the given reference number.
// It panics if the ID is absent; use Pos to test for presence.
func (b *Block) ByID(id int) Tuple {
	i := b.Pos(id)
	if i < 0 {
		panic(fmt.Sprintf("ir: block %q has no tuple %d", b.Label, id))
	}
	return b.Tuples[i]
}

// InvalidateIndex must be called after external code permutes b.Tuples in
// place, so that Pos/ByID rebuild their lookup table.
func (b *Block) InvalidateIndex() { b.index = nil }

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	nb := &Block{Label: b.Label, Tuples: make([]Tuple, len(b.Tuples))}
	copy(nb.Tuples, b.Tuples)
	return nb
}

// Vars returns the sorted set of variable names referenced by the block.
func (b *Block) Vars() []string {
	set := map[string]bool{}
	for _, t := range b.Tuples {
		for _, op := range t.Operands() {
			if op.Kind == VarOperand {
				set[op.Var] = true
			}
		}
	}
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// String renders the block in the textual tuple form, one tuple per line.
func (b *Block) String() string {
	var sb strings.Builder
	if b.Label != "" {
		fmt.Fprintf(&sb, "%s:\n", b.Label)
	}
	for _, t := range b.Tuples {
		sb.WriteString("  ")
		sb.WriteString(t.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// Validate checks structural well-formedness:
//   - every operation is defined and has operands of a legal shape,
//   - tuple IDs are positive and unique,
//   - every reference operand names a tuple that (a) exists, (b) appears
//     earlier in program order, and (c) produces a value.
//
// It returns the first violation found, or nil.
func (b *Block) Validate() error {
	seen := make(map[int]int, len(b.Tuples)) // ID -> position
	for i, t := range b.Tuples {
		if !t.Op.Valid() {
			return fmt.Errorf("%w: tuple at position %d has invalid op", ErrInvalidBlock, i)
		}
		if t.ID <= 0 {
			return fmt.Errorf("%w: tuple at position %d has non-positive ID %d", ErrInvalidBlock, i, t.ID)
		}
		if prev, dup := seen[t.ID]; dup {
			return fmt.Errorf("%w: duplicate tuple ID %d at positions %d and %d", ErrInvalidBlock, t.ID, prev, i)
		}
		seen[t.ID] = i
		if err := validateShape(t); err != nil {
			return err
		}
		for _, ref := range t.Refs() {
			j, ok := seen[ref]
			if !ok {
				return fmt.Errorf("%w: tuple %d references %d which does not precede it", ErrInvalidBlock, t.ID, ref)
			}
			if !b.Tuples[j].Op.ProducesValue() {
				return fmt.Errorf("%w: tuple %d references %d (%s) which produces no value", ErrInvalidBlock, t.ID, ref, b.Tuples[j].Op)
			}
		}
	}
	return nil
}

func validateShape(t Tuple) error {
	switch t.Op {
	case Nop:
		if !t.A.IsNone() || !t.B.IsNone() {
			return fmt.Errorf("%w: tuple %d: Nop takes no operands", ErrInvalidBlock, t.ID)
		}
	case Const:
		if t.A.Kind != ImmOperand || !t.B.IsNone() {
			return fmt.Errorf("%w: tuple %d: Const takes one immediate operand", ErrInvalidBlock, t.ID)
		}
	case Load:
		if t.A.Kind != VarOperand || !t.B.IsNone() {
			return fmt.Errorf("%w: tuple %d: Load takes one variable operand", ErrInvalidBlock, t.ID)
		}
	case Store:
		if t.A.Kind != VarOperand {
			return fmt.Errorf("%w: tuple %d: Store's first operand must be a variable", ErrInvalidBlock, t.ID)
		}
		if t.B.Kind != RefOperand && t.B.Kind != ImmOperand {
			return fmt.Errorf("%w: tuple %d: Store's second operand must be a ref or immediate", ErrInvalidBlock, t.ID)
		}
	case Neg:
		if t.A.Kind != RefOperand || !t.B.IsNone() {
			return fmt.Errorf("%w: tuple %d: Neg takes one ref operand", ErrInvalidBlock, t.ID)
		}
	case Add, Sub, Mul, Div, Mod:
		for _, op := range []Operand{t.A, t.B} {
			if op.Kind != RefOperand && op.Kind != ImmOperand {
				return fmt.Errorf("%w: tuple %d: %s operands must be refs or immediates", ErrInvalidBlock, t.ID, t.Op)
			}
		}
	default:
		return fmt.Errorf("%w: tuple %d: unknown op %v", ErrInvalidBlock, t.ID, t.Op)
	}
	return nil
}

// Permute returns a copy of the block with tuples rearranged according to
// order, a permutation of current positions: result position k holds
// b.Tuples[order[k]]. It returns an error if order is not a permutation
// of 0..len-1.
func (b *Block) Permute(order []int) (*Block, error) {
	if len(order) != len(b.Tuples) {
		return nil, fmt.Errorf("ir: permutation length %d != block length %d", len(order), len(b.Tuples))
	}
	used := make([]bool, len(order))
	nb := &Block{Label: b.Label, Tuples: make([]Tuple, len(order))}
	for k, src := range order {
		if src < 0 || src >= len(order) || used[src] {
			return nil, fmt.Errorf("ir: order is not a permutation (entry %d = %d)", k, src)
		}
		used[src] = true
		nb.Tuples[k] = b.Tuples[src]
	}
	return nb, nil
}

// Concat joins blocks into one straight-line block, renumbering tuple
// IDs (and the references to them) so they stay unique. It models the
// "no branches between them" composition used when scheduling a
// sequence of adjacent blocks.
func Concat(label string, blocks ...*Block) (*Block, error) {
	out := NewBlock(label)
	for _, b := range blocks {
		remap := make(map[int]int, len(b.Tuples))
		for _, t := range b.Tuples {
			nt := t
			nt.ID = out.NextID()
			remap[t.ID] = nt.ID
			if nt.A.Kind == RefOperand {
				nt.A.Ref = remap[nt.A.Ref]
			}
			if nt.B.Kind == RefOperand {
				nt.B.Ref = remap[nt.B.Ref]
			}
			out.Tuples = append(out.Tuples, nt)
			out.index = nil
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("ir: Concat produced invalid block: %w", err)
	}
	return out, nil
}
