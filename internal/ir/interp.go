package ir

import "fmt"

// Env maps variable names to integer values for tuple interpretation.
type Env map[string]int64

// Clone returns an independent copy of the environment.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Exec interprets the block over env, mutating env with every Store and
// returning the value of each tuple by ID. Variables read before any
// Store default to 0 unless present in env. Division or remainder by
// zero is an error (the optimizer must never introduce one).
//
// The interpreter is the semantic oracle of the repository: the
// optimizer and the scheduler are both required to preserve Exec's
// observable result (the final env).
func Exec(b *Block, env Env) (map[int]int64, error) {
	vals := make(map[int]int64, len(b.Tuples))
	get := func(o Operand) (int64, error) {
		switch o.Kind {
		case ImmOperand:
			return o.Imm, nil
		case RefOperand:
			v, ok := vals[o.Ref]
			if !ok {
				return 0, fmt.Errorf("ir: exec: tuple @%d referenced before execution", o.Ref)
			}
			return v, nil
		case VarOperand:
			return env[o.Var], nil
		}
		return 0, fmt.Errorf("ir: exec: empty operand read")
	}
	for _, t := range b.Tuples {
		switch t.Op {
		case Nop:
			// nothing
		case Const:
			vals[t.ID] = t.A.Imm
		case Load:
			vals[t.ID] = env[t.A.Var]
		case Store:
			v, err := get(t.B)
			if err != nil {
				return nil, err
			}
			env[t.A.Var] = v
		case Neg:
			v, err := get(t.A)
			if err != nil {
				return nil, err
			}
			vals[t.ID] = -v
		case Add, Sub, Mul, Div, Mod:
			x, err := get(t.A)
			if err != nil {
				return nil, err
			}
			y, err := get(t.B)
			if err != nil {
				return nil, err
			}
			switch t.Op {
			case Add:
				vals[t.ID] = x + y
			case Sub:
				vals[t.ID] = x - y
			case Mul:
				vals[t.ID] = x * y
			case Div:
				if y == 0 {
					return nil, fmt.Errorf("ir: exec: tuple %d divides by zero", t.ID)
				}
				vals[t.ID] = x / y
			case Mod:
				if y == 0 {
					return nil, fmt.Errorf("ir: exec: tuple %d takes remainder by zero", t.ID)
				}
				vals[t.ID] = x % y
			}
		default:
			return nil, fmt.Errorf("ir: exec: tuple %d has unsupported op %v", t.ID, t.Op)
		}
	}
	return vals, nil
}
