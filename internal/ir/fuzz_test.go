package ir

import (
	"strings"
	"testing"
)

// FuzzParseTuple checks the tuple-line parser never panics and that
// anything it accepts round-trips through String.
func FuzzParseTuple(f *testing.F) {
	seeds := []string{
		"1: Const 15",
		"2: Store #b, @1",
		"3: Load #a",
		"4: Mul @1, @3",
		"5: Nop",
		"6: Neg @4",
		"7: Add -3, 12",
		"x: bogus",
		"1: Load",
		"",
		"1: Mul @1, @2, @3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tp, err := ParseTuple(line)
		if err != nil {
			return
		}
		back, err := ParseTuple(tp.String())
		if err != nil {
			t.Fatalf("accepted %q -> %q which does not reparse: %v", line, tp.String(), err)
		}
		if back != tp {
			t.Fatalf("round trip changed tuple: %v vs %v", tp, back)
		}
	})
}

// FuzzParseBlocks checks the block parser never panics and that accepted
// inputs render back to re-parseable, equivalent text.
func FuzzParseBlocks(f *testing.F) {
	seeds := []string{
		"one:\n  1: Load #a\n  2: Store #b, @1\n",
		"; comment\n\n1: Const 3\n",
		"a:\n1: Load #x\n\nb:\n1: Load #y\n",
		"bad:\n  1: Mul @2, @3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		blocks, err := ParseBlocks(strings.NewReader(src))
		if err != nil {
			return
		}
		rendered := FormatBlocks(blocks)
		again, err := ParseBlocks(strings.NewReader(rendered))
		if err != nil {
			t.Fatalf("render of accepted input does not reparse: %v\n%s", err, rendered)
		}
		if FormatBlocks(again) != rendered {
			t.Fatalf("render not idempotent:\n%s\nvs\n%s", rendered, FormatBlocks(again))
		}
	})
}

// FuzzParseBlock checks the single-block entry point never panics and
// that every accepted block is structurally valid — the invariant the
// scheduling pipeline's degradation ladder relies on: anything that
// parses can be scheduled, and anything broken fails with a typed error
// rather than a crash.
func FuzzParseBlock(f *testing.F) {
	seeds := []string{
		"1: Const 15\n2: Store #b, @1\n",
		"blk:\n  1: Load #a\n  2: Mul @1, @1\n",
		"1: Load #a\n1: Load #a\n",           // duplicate ID
		"1: Mul @2, @2\n",                    // forward reference
		"a:\n1: Load #x\n\nb:\n1: Load #y\n", // two blocks: must be rejected
		"",
		"; just a comment\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		b, err := ParseBlock(src)
		if err != nil {
			return
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("ParseBlock accepted an invalid block: %v\n%s", err, src)
		}
		if _, err := ParseBlock(b.String()); err != nil {
			t.Fatalf("accepted block does not reparse: %v\n%s", err, b.String())
		}
	})
}
