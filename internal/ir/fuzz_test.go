package ir

import (
	"strings"
	"testing"
)

// FuzzParseTuple checks the tuple-line parser never panics and that
// anything it accepts round-trips through String.
func FuzzParseTuple(f *testing.F) {
	seeds := []string{
		"1: Const 15",
		"2: Store #b, @1",
		"3: Load #a",
		"4: Mul @1, @3",
		"5: Nop",
		"6: Neg @4",
		"7: Add -3, 12",
		"x: bogus",
		"1: Load",
		"",
		"1: Mul @1, @2, @3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tp, err := ParseTuple(line)
		if err != nil {
			return
		}
		back, err := ParseTuple(tp.String())
		if err != nil {
			t.Fatalf("accepted %q -> %q which does not reparse: %v", line, tp.String(), err)
		}
		if back != tp {
			t.Fatalf("round trip changed tuple: %v vs %v", tp, back)
		}
	})
}

// FuzzParseBlocks checks the block parser never panics and that accepted
// inputs render back to re-parseable, equivalent text.
func FuzzParseBlocks(f *testing.F) {
	seeds := []string{
		"one:\n  1: Load #a\n  2: Store #b, @1\n",
		"; comment\n\n1: Const 3\n",
		"a:\n1: Load #x\n\nb:\n1: Load #y\n",
		"bad:\n  1: Mul @2, @3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		blocks, err := ParseBlocks(strings.NewReader(src))
		if err != nil {
			return
		}
		rendered := FormatBlocks(blocks)
		again, err := ParseBlocks(strings.NewReader(rendered))
		if err != nil {
			t.Fatalf("render of accepted input does not reparse: %v\n%s", err, rendered)
		}
		if FormatBlocks(again) != rendered {
			t.Fatalf("render not idempotent:\n%s\nvs\n%s", rendered, FormatBlocks(again))
		}
	})
}
