// Package plot renders the paper's figures as ASCII charts: scatter
// plots (Figure 1), multi-series line charts (Figures 4, 6, 7) and
// histograms (Figure 5). Output is deterministic and terminal-friendly.
package plot

import (
	"fmt"
	"math"
	"strings"

	"pipesched/internal/stats"
)

// Point is one (x, y) sample.
type Point struct{ X, Y float64 }

// Series is a named sequence of points drawn with one mark rune.
type Series struct {
	Name   string
	Mark   rune
	Points []Point
}

// Config sets chart dimensions and labels.
type Config struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	LogY   bool
}

func (c *Config) defaults() {
	if c.Width <= 0 {
		c.Width = 60
	}
	if c.Height <= 0 {
		c.Height = 16
	}
}

// Chart renders one or more series on shared axes.
func Chart(cfg Config, series ...Series) string {
	cfg.defaults()
	var xs, ys []float64
	for _, s := range series {
		for _, p := range s.Points {
			xs = append(xs, p.X)
			ys = append(ys, transformY(cfg, p.Y))
		}
	}
	if len(xs) == 0 {
		return cfg.Title + "\n(no data)\n"
	}
	xmin, xmax := stats.MinMax(xs)
	ymin, ymax := stats.MinMax(ys)
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, cfg.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", cfg.Width))
	}
	for _, s := range series {
		for _, p := range s.Points {
			cx := int(math.Round((p.X - xmin) / (xmax - xmin) * float64(cfg.Width-1)))
			cy := int(math.Round((transformY(cfg, p.Y) - ymin) / (ymax - ymin) * float64(cfg.Height-1)))
			row := cfg.Height - 1 - cy
			if row >= 0 && row < cfg.Height && cx >= 0 && cx < cfg.Width {
				grid[row][cx] = s.Mark
			}
		}
	}

	var sb strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&sb, "%s\n", cfg.Title)
	}
	ylab := cfg.YLabel
	if cfg.LogY {
		ylab += " (log10)"
	}
	if ylab != "" {
		fmt.Fprintf(&sb, "%s\n", ylab)
	}
	for r, row := range grid {
		yv := ymax - (ymax-ymin)*float64(r)/float64(cfg.Height-1)
		fmt.Fprintf(&sb, "%10.2f |%s\n", yv, string(row))
	}
	sb.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", cfg.Width) + "\n")
	fmt.Fprintf(&sb, "%11s%-*.6g%*.6g\n", "", cfg.Width/2, xmin, cfg.Width-cfg.Width/2, xmax)
	if cfg.XLabel != "" {
		fmt.Fprintf(&sb, "%11s%s\n", "", center(cfg.XLabel, cfg.Width))
	}
	var legend []string
	for _, s := range series {
		if s.Name != "" {
			legend = append(legend, fmt.Sprintf("%c=%s", s.Mark, s.Name))
		}
	}
	if len(legend) > 0 {
		fmt.Fprintf(&sb, "%11slegend: %s\n", "", strings.Join(legend, "  "))
	}
	return sb.String()
}

func transformY(cfg Config, y float64) float64 {
	if cfg.LogY {
		if y <= 0 {
			return 0
		}
		return math.Log10(y)
	}
	return y
}

func center(s string, w int) string {
	if len(s) >= w {
		return s
	}
	pad := (w - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}

// HistogramChart renders a stats.Histogram as horizontal bars.
func HistogramChart(title string, h stats.Histogram, barWidth int) string {
	if barWidth <= 0 {
		barWidth = 50
	}
	maxCount := 0
	total := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
		total += c
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	if total == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * barWidth / maxCount
		}
		fmt.Fprintf(&sb, "%14s |%-*s %d\n", h.BinLabel(i), barWidth, strings.Repeat("#", bar), c)
	}
	fmt.Fprintf(&sb, "total: %d samples\n", total)
	return sb.String()
}
