package plot

import (
	"strings"
	"testing"

	"pipesched/internal/stats"
)

func TestChartRendersAllParts(t *testing.T) {
	out := Chart(Config{
		Title:  "demo chart",
		XLabel: "block size",
		YLabel: "nops",
	},
		Series{Name: "initial", Mark: 'i', Points: []Point{{1, 2}, {2, 4}, {3, 6}}},
		Series{Name: "final", Mark: 'f', Points: []Point{{1, 1}, {2, 1}, {3, 1}}},
	)
	for _, want := range []string{"demo chart", "nops", "block size", "i=initial", "f=final", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "i") || !strings.Contains(out, "f") {
		t.Error("marks not plotted")
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart(Config{Title: "empty"})
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart rendering: %q", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	out := Chart(Config{}, Series{Mark: '*', Points: []Point{{5, 5}}})
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestChartLogY(t *testing.T) {
	out := Chart(Config{YLabel: "calls", LogY: true},
		Series{Mark: '*', Points: []Point{{1, 10}, {2, 100}, {3, 1000}}})
	if !strings.Contains(out, "(log10)") {
		t.Errorf("log axis not labeled:\n%s", out)
	}
}

func TestChartDimensions(t *testing.T) {
	out := Chart(Config{Width: 20, Height: 5},
		Series{Mark: '*', Points: []Point{{0, 0}, {1, 1}}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 5 {
		t.Errorf("got %d plot rows, want 5:\n%s", plotLines, out)
	}
}

func TestHistogramChart(t *testing.T) {
	h := stats.NewHistogram([]float64{1, 1, 2, 2, 2, 3}, 3)
	out := HistogramChart("sizes", h, 30)
	for _, want := range []string{"sizes", "#", "total: 6 samples"} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramChartEmpty(t *testing.T) {
	h := stats.NewHistogram(nil, 3)
	out := HistogramChart("none", h, 10)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty histogram: %q", out)
	}
}

func TestChartDeterministic(t *testing.T) {
	mk := func() string {
		return Chart(Config{Title: "d"}, Series{Mark: 'x', Points: []Point{{1, 3}, {4, 2}, {9, 8}}})
	}
	if mk() != mk() {
		t.Error("chart output not deterministic")
	}
}
