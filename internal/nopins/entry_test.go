package nopins

import (
	"testing"

	"pipesched/internal/machine"
)

func TestEntryStateStartTick(t *testing.T) {
	g := mustGraph(t, `s:
  1: Load #a
  2: Load #b`)
	e := NewEvaluator(g, machine.SimulationMachine(), AssignFixed)
	e.SetEntryState(&EntryState{StartTick: 10})
	e.Push(0)
	e.Push(1)
	if e.IssueAt(0) != 11 || e.IssueAt(1) != 12 {
		t.Errorf("issue ticks %d,%d, want 11,12", e.IssueAt(0), e.IssueAt(1))
	}
	if e.TotalNOPs() != 0 {
		t.Errorf("no NOPs expected, got %d", e.TotalNOPs())
	}
}

func TestEntryStateReadyTick(t *testing.T) {
	g := mustGraph(t, `r:
  1: Load #a
  2: Load #b`)
	e := NewEvaluator(g, machine.SimulationMachine(), AssignFixed)
	// Node 0 may not issue before tick 4 (a value from a previous block
	// is still in flight); node 1 is free.
	e.SetEntryState(&EntryState{StartTick: 1, ReadyTick: []int{4, 0}})
	eta := e.Push(0)
	if eta != 2 || e.IssueAt(0) != 4 {
		t.Errorf("eta=%d issue=%d, want 2 and 4", eta, e.IssueAt(0))
	}
	e.Pop()
	// The unconstrained node goes immediately.
	if eta := e.Push(1); eta != 0 {
		t.Errorf("unconstrained node delayed by %d", eta)
	}
}

func TestEntryStatePipeLast(t *testing.T) {
	// Multiplier enqueue time 2; a multiply issued at absolute tick 3 in
	// the previous block forces the next multiply to tick >= 5.
	g := mustGraph(t, `p:
  1: Mul 2, 3
  2: Const 7`)
	m := machine.SimulationMachine()
	mulPipe := m.PipelineFor(g.Block.Tuples[0].Op)
	e := NewEvaluator(g, m, AssignFixed)
	e.SetEntryState(&EntryState{StartTick: 3, PipeLast: map[int]int{mulPipe: 3}})
	eta := e.Push(0)
	if eta != 1 || e.IssueAt(0) != 5 {
		t.Errorf("eta=%d issue=%d, want 1 and 5", eta, e.IssueAt(0))
	}
	// A no-pipeline op is unaffected by the reservation.
	e.Reset()
	if eta := e.Push(1); eta != 0 {
		t.Errorf("Const delayed %d by pipe reservation", eta)
	}
}

func TestEntryStatePipeLastShadowedByInWindowUse(t *testing.T) {
	// Once an in-block instruction has used the pipeline, the boundary
	// reservation is stale: spacing is measured from the nearest use.
	g := mustGraph(t, `q:
  1: Mul 2, 3
  2: Const 1
  3: Mul 4, 5`)
	m := machine.SimulationMachine()
	mulPipe := m.PipelineFor(g.Block.Tuples[0].Op)
	e := NewEvaluator(g, m, AssignFixed)
	e.SetEntryState(&EntryState{StartTick: 2, PipeLast: map[int]int{mulPipe: 2}})
	e.Push(0) // first Mul: boundary spacing 2 -> eta 1, issues at 4
	if e.IssueAt(0) != 4 {
		t.Fatalf("first Mul issued at %d, want 4", e.IssueAt(0))
	}
	e.Push(1) // Const at 5
	eta := e.Push(2)
	// Second Mul: nearest same-pipe is position 0 at tick 4; next issue
	// would be 6, gap 2 >= enqueue 2 -> no NOP. The stale boundary (tick
	// 2) must NOT add anything.
	if eta != 0 || e.IssueAt(2) != 6 {
		t.Errorf("eta=%d issue=%d, want 0 and 6", eta, e.IssueAt(2))
	}
}

func TestSetEntryStateNilRestoresColdStart(t *testing.T) {
	g := mustGraph(t, `c:
  1: Load #a`)
	e := NewEvaluator(g, machine.SimulationMachine(), AssignFixed)
	e.SetEntryState(&EntryState{StartTick: 50})
	e.SetEntryState(nil)
	e.Push(0)
	if e.IssueAt(0) != 1 {
		t.Errorf("cold start issue = %d, want 1", e.IssueAt(0))
	}
}

func TestSetEntryStateValidatesReadyLength(t *testing.T) {
	g := mustGraph(t, `v:
  1: Load #a
  2: Load #b`)
	e := NewEvaluator(g, machine.SimulationMachine(), AssignFixed)
	defer func() {
		if recover() == nil {
			t.Error("short ReadyTick accepted")
		}
	}()
	e.SetEntryState(&EntryState{ReadyTick: []int{1}})
}

func TestEntryStateSurvivesReset(t *testing.T) {
	g := mustGraph(t, `sr:
  1: Load #a`)
	e := NewEvaluator(g, machine.SimulationMachine(), AssignFixed)
	e.SetEntryState(&EntryState{StartTick: 7})
	e.Push(0)
	e.Reset()
	e.Push(0)
	if e.IssueAt(0) != 8 {
		t.Errorf("entry state lost across Reset: issue %d, want 8", e.IssueAt(0))
	}
}
