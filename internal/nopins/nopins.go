// Package nopins implements the paper's NOP insertion algorithm
// (section 4.2.2) — the procedure the paper calls Ω (or Q): given a
// schedule prefix, compute the minimum number of NOPs that must precede
// the next instruction so that no pipeline conflict or dependence is
// violated.
//
// The Evaluator keeps the state of a partial schedule and supports O(1)
// undo (Pop), which is what makes the branch-and-bound search in
// internal/core cheap: each search step is one Push/Pop pair rather than
// an O(n) re-evaluation of the whole prefix.
//
// Timing model: instruction at (0-based) position i issues at tick
// t(i) = Σ_{k≤i} (η(k)+1) where η(k) is the number of NOPs inserted
// immediately before position k. The gap τ between two issued
// instructions is the difference of their issue ticks.
//
//   - Conflict (enqueue) rule: if positions j < i use the same pipeline,
//     then t(i) − t(j) ≥ enqueue time of that pipeline.
//   - Dependence (latency) rule: if the instruction at position i has a
//     flow dependence on the one at position j, then t(i) − t(j) ≥
//     latency of the producer's pipeline. Memory-ordering edges
//     (anti/output) carry no latency; issue order alone satisfies them.
package nopins

import (
	"fmt"

	"pipesched/internal/dag"
	"pipesched/internal/machine"
)

// AssignMode selects how operations are bound to pipelines when the
// machine's op→pipeline sets are not singletons.
type AssignMode uint8

const (
	// AssignFixed always uses the first pipeline in the op's set. This is
	// the paper's core model (footnote 3: the presented algorithm does not
	// choose between multiple viable pipelines).
	AssignFixed AssignMode = iota
	// AssignGreedy picks, at each placement, the allowed pipeline that
	// yields the fewest NOPs for that instruction (ties to the lowest ID).
	// This is the pipeline-assignment extension described in DESIGN.md.
	AssignGreedy
)

// Evaluator computes NOP counts for incrementally built schedules of one
// block on one machine.
type Evaluator struct {
	G    *dag.Graph
	M    *machine.Machine
	Mode AssignMode

	pipeSets [][]int // node -> allowed pipeline IDs (singleton under AssignFixed)

	// Per-position state of the current partial schedule.
	nodeAt []int // position -> node
	pipeAt []int // position -> assigned pipeline ID
	etaAt  []int // position -> NOPs inserted immediately before it
	issue  []int // position -> issue tick t(i)
	posOf  []int // node -> position, or -1 if unscheduled
	n      int   // number of placed positions
	total  int   // μ of the current partial schedule

	entry EntryState // cross-block initial conditions (zero = cold start)
}

// NewEvaluator prepares an evaluator for graph g on machine m.
func NewEvaluator(g *dag.Graph, m *machine.Machine, mode AssignMode) *Evaluator {
	e := &Evaluator{
		G:        g,
		M:        m,
		Mode:     mode,
		pipeSets: make([][]int, g.N),
		nodeAt:   make([]int, g.N),
		pipeAt:   make([]int, g.N),
		etaAt:    make([]int, g.N),
		issue:    make([]int, g.N),
		posOf:    make([]int, g.N),
	}
	for u := 0; u < g.N; u++ {
		op := g.Block.Tuples[u].Op
		set := m.PipelinesFor(op)
		if mode == AssignFixed && len(set) > 1 {
			set = set[:1]
		}
		if len(set) == 0 {
			set = []int{machine.NoPipeline}
		}
		e.pipeSets[u] = set
		e.posOf[u] = -1
	}
	return e
}

// Reset empties the partial schedule.
func (e *Evaluator) Reset() {
	for i := 0; i < e.n; i++ {
		e.posOf[e.nodeAt[i]] = -1
	}
	e.n = 0
	e.total = 0
}

// Len returns the number of instructions placed so far.
func (e *Evaluator) Len() int { return e.n }

// TotalNOPs returns μ(Φ), the NOPs required by the current partial
// schedule.
func (e *Evaluator) TotalNOPs() int { return e.total }

// Scheduled reports whether node u is in the current partial schedule.
func (e *Evaluator) Scheduled(u int) bool { return e.posOf[u] >= 0 }

// NodeAt returns the node placed at position i.
func (e *Evaluator) NodeAt(i int) int { return e.nodeAt[i] }

// EtaAt returns η(i), the NOPs inserted immediately before position i.
func (e *Evaluator) EtaAt(i int) int { return e.etaAt[i] }

// PipeAt returns the pipeline assigned to the instruction at position i.
func (e *Evaluator) PipeAt(i int) int { return e.pipeAt[i] }

// IssueAt returns the issue tick t(i) of position i (first tick is 1).
func (e *Evaluator) IssueAt(i int) int { return e.issue[i] }

// Ready reports whether all of u's immediate predecessors are scheduled
// (the paper's exact legality test [5b]: ρ(ξ) ⊆ Φ).
func (e *Evaluator) Ready(u int) bool {
	for _, d := range e.G.Preds[u] {
		if e.posOf[d.Node] < 0 {
			return false
		}
	}
	return true
}

// EtaFor computes the NOPs that placing node u on pipeline pipe at the
// next position would require, without modifying the schedule. It panics
// if a predecessor of u is unscheduled (callers must check Ready first).
func (e *Evaluator) EtaFor(u, pipe int) int {
	i := e.n
	need := 0
	prevIssue := e.entry.StartTick
	if i > 0 {
		prevIssue = e.issue[i-1]
	}
	// Conflict check: scan backward for the nearest instruction sharing
	// the pipeline. base(j) is the issue gap assuming η(i) = 0; η(i) only
	// widens the gap, so scanning can stop once base reaches the enqueue
	// time — every earlier instruction is then transitively satisfied.
	if pipe != machine.NoPipeline {
		enq := e.M.EnqueueTime(pipe)
		for j := i - 1; j >= 0; j-- {
			base := prevIssue + 1 - e.issue[j]
			if base >= enq {
				break
			}
			if e.pipeAt[j] == pipe {
				if d := enq - base; d > need {
					need = d
				}
				break
			}
		}
	}
	// Dependence check: each flow predecessor imposes
	// η(i) ≥ latency(producer pipe) − base(pos(producer)). Raising η(i)
	// relaxes every other constraint equally, so the max deficit is exact.
	for _, d := range e.G.Preds[u] {
		if !d.Kind.CarriesLatency() {
			continue
		}
		jp := e.posOf[d.Node]
		if jp < 0 {
			panic(fmt.Sprintf("nopins: predecessor %d of node %d not scheduled", d.Node, u))
		}
		lat := e.M.Latency(e.pipeAt[jp])
		base := prevIssue + 1 - e.issue[jp]
		if def := lat - base; def > need {
			need = def
		}
	}
	return e.entryEta(u, pipe, i, prevIssue, need)
}

// ChoosePipe returns the pipeline the evaluator would assign to node u at
// the next position, along with the NOPs that choice costs. Under
// AssignFixed the choice is the op's first pipeline; under AssignGreedy it
// is the cheapest allowed pipeline.
func (e *Evaluator) ChoosePipe(u int) (pipe, eta int) {
	set := e.pipeSets[u]
	pipe = set[0]
	eta = e.EtaFor(u, pipe)
	if e.Mode == AssignGreedy {
		for _, p := range set[1:] {
			if c := e.EtaFor(u, p); c < eta {
				pipe, eta = p, c
			}
		}
	}
	return pipe, eta
}

// PipeChoices returns the allowed pipeline IDs for node u.
func (e *Evaluator) PipeChoices(u int) []int { return e.pipeSets[u] }

// Push appends node u to the schedule, assigning its pipeline per the
// evaluator's mode, and returns η for the new position.
func (e *Evaluator) Push(u int) int {
	pipe, eta := e.ChoosePipe(u)
	e.pushWith(u, pipe, eta)
	return eta
}

// PushWithPipe appends node u bound to an explicit pipeline (which must
// be in the node's allowed set) and returns η for the new position. It is
// used by the assignment-search extension.
func (e *Evaluator) PushWithPipe(u, pipe int) int {
	ok := false
	for _, p := range e.pipeSets[u] {
		if p == pipe {
			ok = true
			break
		}
	}
	if !ok {
		panic(fmt.Sprintf("nopins: pipeline %d not allowed for node %d", pipe, u))
	}
	eta := e.EtaFor(u, pipe)
	e.pushWith(u, pipe, eta)
	return eta
}

func (e *Evaluator) pushWith(u, pipe, eta int) {
	if e.posOf[u] >= 0 {
		panic(fmt.Sprintf("nopins: node %d already scheduled", u))
	}
	i := e.n
	e.nodeAt[i] = u
	e.pipeAt[i] = pipe
	e.etaAt[i] = eta
	if i == 0 {
		e.issue[i] = e.entry.StartTick + eta + 1
	} else {
		e.issue[i] = e.issue[i-1] + eta + 1
	}
	e.posOf[u] = i
	e.total += eta
	e.n++
}

// Pop removes the most recently pushed instruction.
func (e *Evaluator) Pop() {
	if e.n == 0 {
		panic("nopins: Pop on empty schedule")
	}
	e.n--
	e.total -= e.etaAt[e.n]
	e.posOf[e.nodeAt[e.n]] = -1
}

// Result is a fully evaluated schedule: the execution order (as nodes of
// the graph), per-position NOP counts and pipeline assignments, and the
// total.
type Result struct {
	Order     []int // position -> node
	Eta       []int // position -> NOPs inserted immediately before it
	Pipes     []int // position -> pipeline assignment
	TotalNOPs int
	Ticks     int // total execution ticks: instructions + NOPs
}

// snapshot copies the evaluator's complete current schedule.
func (e *Evaluator) snapshot() Result {
	r := Result{
		Order:     append([]int(nil), e.nodeAt[:e.n]...),
		Eta:       append([]int(nil), e.etaAt[:e.n]...),
		Pipes:     append([]int(nil), e.pipeAt[:e.n]...),
		TotalNOPs: e.total,
	}
	if e.n > 0 {
		r.Ticks = e.issue[e.n-1]
	}
	return r
}

// Snapshot returns a copy of the current (complete or partial) schedule.
func (e *Evaluator) Snapshot() Result { return e.snapshot() }

// EvaluateOrder runs the full NOP insertion algorithm over a complete
// proposed order (the paper's procedure Q applied to one schedule). The
// evaluator's previous state is discarded. It returns an error if order
// is not a legal topological order of the graph.
func (e *Evaluator) EvaluateOrder(order []int) (Result, error) {
	if !e.G.IsLegalOrder(order) {
		return Result{}, fmt.Errorf("nopins: order %v violates dependences", order)
	}
	e.Reset()
	for _, u := range order {
		e.Push(u)
	}
	return e.snapshot(), nil
}

// EntryState carries pipeline conditions into a block, supporting the
// paper's footnote 1 ("interactions between adjacent blocks can be
// managed ... by modifying the initial conditions in the analysis for
// each block") and the section 5.3 block-splitting strategy. All ticks
// are absolute: the first instruction of this block issues no earlier
// than StartTick+1.
type EntryState struct {
	// StartTick is the issue tick of the last instruction already issued
	// before this block; 0 means a cold start.
	StartTick int
	// ReadyTick, when non-nil, gives per node the earliest issue tick
	// permitted by dependences on instructions OUTSIDE the block (e.g.
	// values still in flight from the previous block or window).
	ReadyTick []int
	// PipeLast maps a pipeline ID to the absolute tick of its most
	// recent enqueue before this block, for cross-boundary conflict
	// (enqueue-time) constraints.
	PipeLast map[int]int
}

// SetEntryState installs entry conditions and resets the schedule. A nil
// state restores the default cold start.
func (e *Evaluator) SetEntryState(s *EntryState) {
	e.Reset()
	if s == nil {
		e.entry = EntryState{}
		return
	}
	if s.ReadyTick != nil && len(s.ReadyTick) != e.G.N {
		panic(fmt.Sprintf("nopins: ReadyTick length %d != %d nodes", len(s.ReadyTick), e.G.N))
	}
	e.entry = *s
}

// entryEta augments EtaFor's result with entry-state constraints for
// placing node u on pipe at position i with the given previous issue
// tick. It returns the extra delay demanded by external dependences and
// cross-boundary pipeline reservations.
func (e *Evaluator) entryEta(u, pipe, i, prevIssue, needSoFar int) int {
	need := needSoFar
	if e.entry.ReadyTick != nil {
		// issue = prevIssue + η + 1 >= ReadyTick[u]
		if d := e.entry.ReadyTick[u] - prevIssue - 1; d > need {
			need = d
		}
	}
	if pipe != machine.NoPipeline && len(e.entry.PipeLast) > 0 {
		// Only binding if no in-window instruction of the same pipeline
		// sits between the boundary and position i; the nearest-first
		// conflict scan in EtaFor has already handled in-window spacing,
		// and if any in-window instruction used this pipeline its own
		// spacing against the boundary was enforced when it was placed.
		if last, ok := e.entry.PipeLast[pipe]; ok && !e.pipeSeen(pipe, i) {
			enq := e.M.EnqueueTime(pipe)
			if d := enq - (prevIssue + 1 - last); d > need {
				need = d
			}
		}
	}
	return need
}

// pipeSeen reports whether any of the first i scheduled positions used
// the pipeline.
func (e *Evaluator) pipeSeen(pipe, i int) bool {
	for j := 0; j < i; j++ {
		if e.pipeAt[j] == pipe {
			return true
		}
	}
	return false
}
