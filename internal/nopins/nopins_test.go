package nopins

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/dag"
	"pipesched/internal/ir"
	"pipesched/internal/machine"
)

func mustGraph(t *testing.T, src string) *dag.Graph {
	t.Helper()
	b, err := ir.ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dag.Build(b)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func evalOrder(t *testing.T, g *dag.Graph, m *machine.Machine, order []int) Result {
	t.Helper()
	e := NewEvaluator(g, m, AssignFixed)
	r, err := e.EvaluateOrder(order)
	if err != nil {
		t.Fatalf("EvaluateOrder(%v): %v", order, err)
	}
	return r
}

// TestPaperDependenceExample reproduces section 2.1's dependence example:
// a Load (latency-4 pipeline there; our simulation loader has latency 2)
// immediately followed by a dependent consumer needs latency-1 NOPs.
func TestPaperDependenceExample(t *testing.T) {
	g := mustGraph(t, `dep:
  1: Load #x
  2: Load #y
  3: Add @1, @2
  4: Store #r, @3`)
	m := machine.SimulationMachine()
	r := evalOrder(t, g, m, []int{0, 1, 2, 3})
	// Loads at t=1,2 (enqueue 1, no conflict). Add depends on Load y
	// issued at t=2 with latency 2: must issue at t>=4, base gap is 1, so
	// one NOP. Store depends on Add (latency 2) issued at t=4: needs t>=6,
	// base gap 1, so one more NOP.
	if want := []int{0, 0, 1, 1}; !equalInts(r.Eta, want) {
		t.Errorf("Eta = %v, want %v", r.Eta, want)
	}
	if r.TotalNOPs != 2 {
		t.Errorf("TotalNOPs = %d, want 2", r.TotalNOPs)
	}
	if r.Ticks != 6 {
		t.Errorf("Ticks = %d, want 6", r.Ticks)
	}
}

// TestPaperConflictExample reproduces section 2.1's conflict example: two
// Loads on a pipeline whose enqueue time is 2 must be one tick apart
// extra (MAR busy for 2 ticks), i.e. one NOP between them.
func TestPaperConflictExample(t *testing.T) {
	m, err := machine.New("mar",
		[]machine.Pipeline{{Function: "loader", ID: 1, Latency: 4, Enqueue: 2}},
		map[ir.Op][]int{ir.Load: {1}})
	if err != nil {
		t.Fatal(err)
	}
	g := mustGraph(t, `conf:
  1: Load #x
  2: Load #y`)
	r := evalOrder(t, g, m, []int{0, 1})
	if want := []int{0, 1}; !equalInts(r.Eta, want) {
		t.Errorf("Eta = %v, want %v", r.Eta, want)
	}
}

// TestFigure3InitialSchedule checks the hand-computed NOP count for the
// paper's Figure 3 block in its original program order on the simulation
// machine: Const, Store b, Load a, Mul, Store a -> 0+0+0+1+3 = 4 NOPs.
func TestFigure3InitialSchedule(t *testing.T) {
	g := mustGraph(t, `fig3:
  1: Const 15
  2: Store #b, @1
  3: Load #a
  4: Mul @1, @3
  5: Store #a, @4`)
	m := machine.SimulationMachine()
	r := evalOrder(t, g, m, []int{0, 1, 2, 3, 4})
	if want := []int{0, 0, 0, 1, 3}; !equalInts(r.Eta, want) {
		t.Errorf("Eta = %v, want %v", r.Eta, want)
	}
	if r.TotalNOPs != 4 {
		t.Errorf("TotalNOPs = %d, want 4", r.TotalNOPs)
	}

	// A better order hides the Load latency behind the Const and fills
	// one Mul latency slot with the Store of b: 2 NOPs total.
	r2 := evalOrder(t, g, m, []int{2, 0, 3, 1, 4})
	if r2.TotalNOPs != 2 {
		t.Errorf("improved order TotalNOPs = %d, want 2", r2.TotalNOPs)
	}
}

func TestEnqueueConflictSameAndDifferentPipes(t *testing.T) {
	g := mustGraph(t, `muls:
  1: Const 2
  2: Const 3
  3: Mul @1, @2
  4: Mul @1, @1
  5: Store #p, @3
  6: Store #q, @4`)
	m := machine.SimulationMachine() // multiplier enqueue 2
	r := evalOrder(t, g, m, []int{0, 1, 2, 3, 4, 5})
	// Const t1, Const t2, Mul t3 (Const has no pipe: no latency), second
	// Mul: same pipeline, gap 1 < enqueue 2 -> 1 NOP, t5. Store p needs
	// Mul#1 latency 4 from t3: t>=7, base gap 6-... issue would be t6,
	// deficit 1 -> 1 NOP, t7. Store q needs Mul#2 (t5) + 4 = t9, next
	// issue t8, deficit 1 -> 1 NOP, t9.
	if want := []int{0, 0, 0, 1, 1, 1}; !equalInts(r.Eta, want) {
		t.Errorf("Eta = %v, want %v", r.Eta, want)
	}
}

func TestConflictScanStopsAtNearestSamePipe(t *testing.T) {
	// Three instructions on the same pipeline with enqueue 3: spacing must
	// accumulate pairwise, and satisfying the nearest predecessor must
	// transitively satisfy earlier ones.
	m, err := machine.New("enq3",
		[]machine.Pipeline{{Function: "u", ID: 1, Latency: 3, Enqueue: 3}},
		map[ir.Op][]int{ir.Load: {1}})
	if err != nil {
		t.Fatal(err)
	}
	g := mustGraph(t, `three:
  1: Load #a
  2: Load #b
  3: Load #c`)
	r := evalOrder(t, g, m, []int{0, 1, 2})
	// t1; second needs gap 3: eta 2, t4; third likewise eta 2, t7.
	if want := []int{0, 2, 2}; !equalInts(r.Eta, want) {
		t.Errorf("Eta = %v, want %v", r.Eta, want)
	}
	if r.Ticks != 7 {
		t.Errorf("Ticks = %d, want 7", r.Ticks)
	}
}

func TestMemoryOrderEdgesCarryNoLatency(t *testing.T) {
	g := mustGraph(t, `mem:
  1: Load #a
  2: Store #b, @1
  3: Load #b`)
	m := machine.SimulationMachine()
	// Store b at position 1 waits for the Load's latency (flow edge);
	// Load b at position 2 only needs issue order after Store (MemRAW),
	// no latency, and the loader enqueue is 1 with the gap already 2.
	r := evalOrder(t, g, m, []int{0, 1, 2})
	if want := []int{0, 1, 0}; !equalInts(r.Eta, want) {
		t.Errorf("Eta = %v, want %v", r.Eta, want)
	}
}

func TestPushPopRestoresState(t *testing.T) {
	g := mustGraph(t, `pp:
  1: Load #a
  2: Load #b
  3: Add @1, @2
  4: Store #c, @3`)
	m := machine.SimulationMachine()
	e := NewEvaluator(g, m, AssignFixed)
	e.Push(0)
	e.Push(1)
	before := e.Snapshot()
	eta := e.Push(2)
	if eta != 1 {
		t.Errorf("Push(Add) eta = %d, want 1", eta)
	}
	e.Pop()
	after := e.Snapshot()
	if before.TotalNOPs != after.TotalNOPs || len(after.Order) != 2 {
		t.Errorf("Pop did not restore state: before %+v after %+v", before, after)
	}
	if e.Scheduled(2) {
		t.Error("node 2 still marked scheduled after Pop")
	}
	// Re-push must give the same answer.
	if eta2 := e.Push(2); eta2 != 1 {
		t.Errorf("re-Push eta = %d, want 1", eta2)
	}
}

func TestReady(t *testing.T) {
	g := mustGraph(t, `rdy:
  1: Load #a
  2: Neg @1
  3: Store #a, @2`)
	e := NewEvaluator(g, machine.SimulationMachine(), AssignFixed)
	if !e.Ready(0) || e.Ready(1) || e.Ready(2) {
		t.Error("initial readiness wrong")
	}
	e.Push(0)
	if !e.Ready(1) || e.Ready(2) {
		t.Error("readiness after first push wrong")
	}
}

func TestEvaluateOrderRejectsIllegal(t *testing.T) {
	g := mustGraph(t, `ill:
  1: Load #a
  2: Neg @1`)
	e := NewEvaluator(g, machine.SimulationMachine(), AssignFixed)
	if _, err := e.EvaluateOrder([]int{1, 0}); err == nil {
		t.Error("illegal order accepted")
	}
	if _, err := e.EvaluateOrder([]int{0}); err == nil {
		t.Error("short order accepted")
	}
}

func TestGreedyAssignmentUsesSecondPipeline(t *testing.T) {
	// Two independent Muls on the example machine would conflict on a
	// single multiplier; two Loads on the two loaders never conflict.
	m := machine.ExampleMachine() // adders 3,4 enqueue 3
	g := mustGraph(t, `adds:
  1: Const 1
  2: Const 2
  3: Add @1, @2
  4: Add @1, @1
  5: Store #x, @3
  6: Store #y, @4`)
	fixed := NewEvaluator(g, m, AssignFixed)
	rf, err := fixed.EvaluateOrder([]int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	greedy := NewEvaluator(g, m, AssignGreedy)
	rg, err := greedy.EvaluateOrder([]int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	// Fixed: both Adds on pipe 3, enqueue 3 forces 2 NOPs between them.
	// Greedy: second Add moves to pipe 4, no conflict NOPs.
	if rg.TotalNOPs >= rf.TotalNOPs {
		t.Errorf("greedy (%d NOPs) should beat fixed (%d NOPs)", rg.TotalNOPs, rf.TotalNOPs)
	}
	if rg.Pipes[2] == rg.Pipes[3] {
		t.Errorf("greedy assigned both Adds to pipe %d", rg.Pipes[2])
	}
}

func TestPushWithPipeValidatesSet(t *testing.T) {
	m := machine.ExampleMachine()
	g := mustGraph(t, `one:
  1: Load #a`)
	e := NewEvaluator(g, m, AssignGreedy)
	defer func() {
		if recover() == nil {
			t.Error("PushWithPipe with disallowed pipe did not panic")
		}
	}()
	e.PushWithPipe(0, 5) // Load cannot run on the multiplier
}

func TestPushTwicePanics(t *testing.T) {
	g := mustGraph(t, `two:
  1: Load #a
  2: Load #b`)
	e := NewEvaluator(g, machine.SimulationMachine(), AssignFixed)
	e.Push(0)
	defer func() {
		if recover() == nil {
			t.Error("double Push did not panic")
		}
	}()
	e.Push(0)
}

func TestPopEmptyPanics(t *testing.T) {
	g := mustGraph(t, `one:
  1: Load #a`)
	e := NewEvaluator(g, machine.SimulationMachine(), AssignFixed)
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty did not panic")
		}
	}()
	e.Pop()
}

// randomLegalOrder produces a random topological order of g.
func randomLegalOrder(rng *rand.Rand, g *dag.Graph) []int {
	remaining := make([]int, g.N)
	for i := range remaining {
		remaining[i] = len(g.Preds[i])
	}
	var order []int
	var ready []int
	for u := 0; u < g.N; u++ {
		if remaining[u] == 0 {
			ready = append(ready, u)
		}
	}
	for len(ready) > 0 {
		k := rng.Intn(len(ready))
		u := ready[k]
		ready = append(ready[:k], ready[k+1:]...)
		order = append(order, u)
		for _, d := range g.Succs[u] {
			remaining[d.Node]--
			if remaining[d.Node] == 0 {
				ready = append(ready, d.Node)
			}
		}
	}
	return order
}

func randomBlock(rng *rand.Rand, n int) *ir.Block {
	b := ir.NewBlock("rand")
	vars := []string{"a", "b", "c"}
	var valueIDs []int
	for i := 0; i < n; i++ {
		switch k := rng.Intn(6); {
		case k == 0 || len(valueIDs) == 0:
			valueIDs = append(valueIDs, b.Append(ir.Load, ir.Var(vars[rng.Intn(len(vars))]), ir.None()))
		case k == 1:
			valueIDs = append(valueIDs, b.Append(ir.Const, ir.Imm(int64(rng.Intn(50))), ir.None()))
		case k == 2:
			b.Append(ir.Store, ir.Var(vars[rng.Intn(len(vars))]), ir.Ref(valueIDs[rng.Intn(len(valueIDs))]))
		default:
			ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Div}
			x := valueIDs[rng.Intn(len(valueIDs))]
			y := valueIDs[rng.Intn(len(valueIDs))]
			valueIDs = append(valueIDs, b.Append(ops[rng.Intn(len(ops))], ir.Ref(x), ir.Ref(y)))
		}
	}
	return b
}

// TestScheduleSatisfiesConstraintsProperty verifies, for random blocks and
// random legal orders, that the NOP counts the evaluator assigns actually
// satisfy every latency and enqueue constraint, and that no single η could
// be reduced without violating one (local minimality).
func TestScheduleSatisfiesConstraintsProperty(t *testing.T) {
	m := machine.SimulationMachine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBlock(rng, 3+rng.Intn(12))
		g, err := dag.Build(b)
		if err != nil {
			return false
		}
		order := randomLegalOrder(rng, g)
		e := NewEvaluator(g, m, AssignFixed)
		r, err := e.EvaluateOrder(order)
		if err != nil {
			return false
		}
		return checkConstraints(g, m, r) && checkLocalMinimality(g, m, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// checkConstraints re-verifies a Result against the machine model from
// scratch (independent implementation of the timing rules).
func checkConstraints(g *dag.Graph, m *machine.Machine, r Result) bool {
	n := len(r.Order)
	issue := make([]int, n)
	tick := 0
	for i := 0; i < n; i++ {
		tick += r.Eta[i] + 1
		issue[i] = tick
	}
	pos := make([]int, g.N)
	for i, u := range r.Order {
		pos[u] = i
	}
	for i, u := range r.Order {
		// enqueue constraints against every earlier same-pipe instruction
		if r.Pipes[i] != machine.NoPipeline {
			enq := m.EnqueueTime(r.Pipes[i])
			for j := 0; j < i; j++ {
				if r.Pipes[j] == r.Pipes[i] && issue[i]-issue[j] < enq {
					return false
				}
			}
		}
		// latency constraints against every flow predecessor
		for _, d := range g.Preds[u] {
			if !d.Kind.CarriesLatency() {
				continue
			}
			jp := pos[d.Node]
			if issue[i]-issue[jp] < m.Latency(r.Pipes[jp]) {
				return false
			}
		}
	}
	return true
}

// checkLocalMinimality verifies that each nonzero η(i) cannot be reduced
// by one without breaking a constraint at position i.
func checkLocalMinimality(g *dag.Graph, m *machine.Machine, r Result) bool {
	for i := range r.Eta {
		if r.Eta[i] == 0 {
			continue
		}
		r2 := r
		r2.Eta = append([]int(nil), r.Eta...)
		r2.Eta[i]--
		if checkConstraints(g, m, r2) {
			return false // could have used fewer NOPs here
		}
	}
	return true
}

// TestGreedyNeverWorseProperty: greedy pipeline assignment never yields
// more NOPs than fixed assignment on the same order.
func TestGreedyNeverWorseProperty(t *testing.T) {
	m := machine.ExampleMachine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBlock(rng, 3+rng.Intn(10))
		g, err := dag.Build(b)
		if err != nil {
			return false
		}
		order := randomLegalOrder(rng, g)
		rf, err := NewEvaluator(g, m, AssignFixed).EvaluateOrder(order)
		if err != nil {
			return false
		}
		rg, err := NewEvaluator(g, m, AssignGreedy).EvaluateOrder(order)
		if err != nil {
			return false
		}
		return rg.TotalNOPs <= rf.TotalNOPs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
