package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestInactiveIsNoop(t *testing.T) {
	for _, s := range Stages() {
		if err := Fire(s); err != nil {
			t.Fatalf("Fire(%s) with no injector = %v", s, err)
		}
	}
	if CurtailLambda() != 0 {
		t.Fatal("CurtailLambda with no injector != 0")
	}
}

func TestErrAndTimes(t *testing.T) {
	want := errors.New("injected")
	restore := Activate(New().Plan(DAG, Plan{Err: want, Times: 2}))
	defer restore()
	for i := 0; i < 2; i++ {
		if err := Fire(DAG); !errors.Is(err, want) {
			t.Fatalf("firing %d = %v, want injected error", i, err)
		}
	}
	if err := Fire(DAG); err != nil {
		t.Fatalf("plan should be exhausted after Times firings, got %v", err)
	}
	if err := Fire(Search); err != nil {
		t.Fatalf("unplanned stage fired: %v", err)
	}
}

func TestPanicAndRestore(t *testing.T) {
	restore := Activate(New().Plan(Codegen, Plan{PanicValue: "boom"}))
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Errorf("recovered %v, want boom", r)
			}
		}()
		Fire(Codegen)
		t.Error("Fire should have panicked")
	}()
	restore()
	if err := Fire(Codegen); err != nil {
		t.Fatalf("after restore Fire = %v", err)
	}
}

func TestDelayAndCurtail(t *testing.T) {
	defer Activate(New().
		Plan(Opt, Plan{Delay: 10 * time.Millisecond}).
		Plan(Search, Plan{CurtailLambda: 7}))()
	start := time.Now()
	if err := Fire(Opt); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("delay not applied: %v", d)
	}
	if got := CurtailLambda(); got != 7 {
		t.Errorf("CurtailLambda = %d, want 7", got)
	}
	// Reading the curtail point must not consume a firing.
	in := active.Load()
	if n := in.Fired(Search); n != 0 {
		t.Errorf("CurtailLambda consumed %d firings", n)
	}
}

// TestNthDeterministic: an Nth plan fires on exactly the Nth crossing,
// exactly once, regardless of Times.
func TestNthDeterministic(t *testing.T) {
	in := New().Plan(Search, Plan{Err: errInjected, Nth: 3, Times: 99})
	defer Activate(in)()
	for i := 1; i <= 6; i++ {
		err := Fire(Search)
		if i == 3 && err != errInjected {
			t.Fatalf("crossing %d: err = %v, want the injected error", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("crossing %d: err = %v, want nil (Nth must fire once)", i, err)
		}
	}
	if got := in.Fired(Search); got != 1 {
		t.Errorf("Fired = %d, want 1", got)
	}
	if got := in.Crossings(Search); got != 6 {
		t.Errorf("Crossings = %d, want 6", got)
	}
}

// TestProbSeeded: a Prob plan fires a seed-deterministic subset of
// crossings — same seed, same firings; the rate tracks the probability;
// a Times budget still caps it.
func TestProbSeeded(t *testing.T) {
	pattern := func(seed int64, times int) []bool {
		in := New().Seed(seed).Plan(Search, Plan{Err: errInjected, Prob: 0.3, Times: times})
		defer Activate(in)()
		out := make([]bool, 200)
		for i := range out {
			out[i] = Fire(Search) != nil
		}
		return out
	}
	a, b := pattern(7, 0), pattern(7, 0)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("crossing %d differs across runs with the same seed", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired < 30 || fired > 90 { // 0.3 ± generous slack over 200 draws
		t.Errorf("fired %d/200 with Prob 0.3", fired)
	}
	c := pattern(8, 0)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical firing patterns")
	}
	capped := 0
	for _, f := range pattern(7, 5) {
		if f {
			capped++
		}
	}
	if capped != 5 {
		t.Errorf("Times=5 budget allowed %d firings", capped)
	}
}

var errInjected = errors.New("injected")
