package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestInactiveIsNoop(t *testing.T) {
	for _, s := range Stages() {
		if err := Fire(s); err != nil {
			t.Fatalf("Fire(%s) with no injector = %v", s, err)
		}
	}
	if CurtailLambda() != 0 {
		t.Fatal("CurtailLambda with no injector != 0")
	}
}

func TestErrAndTimes(t *testing.T) {
	want := errors.New("injected")
	restore := Activate(New().Plan(DAG, Plan{Err: want, Times: 2}))
	defer restore()
	for i := 0; i < 2; i++ {
		if err := Fire(DAG); !errors.Is(err, want) {
			t.Fatalf("firing %d = %v, want injected error", i, err)
		}
	}
	if err := Fire(DAG); err != nil {
		t.Fatalf("plan should be exhausted after Times firings, got %v", err)
	}
	if err := Fire(Search); err != nil {
		t.Fatalf("unplanned stage fired: %v", err)
	}
}

func TestPanicAndRestore(t *testing.T) {
	restore := Activate(New().Plan(Codegen, Plan{PanicValue: "boom"}))
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Errorf("recovered %v, want boom", r)
			}
		}()
		Fire(Codegen)
		t.Error("Fire should have panicked")
	}()
	restore()
	if err := Fire(Codegen); err != nil {
		t.Fatalf("after restore Fire = %v", err)
	}
}

func TestDelayAndCurtail(t *testing.T) {
	defer Activate(New().
		Plan(Opt, Plan{Delay: 10 * time.Millisecond}).
		Plan(Search, Plan{CurtailLambda: 7}))()
	start := time.Now()
	if err := Fire(Opt); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("delay not applied: %v", d)
	}
	if got := CurtailLambda(); got != 7 {
		t.Errorf("CurtailLambda = %d, want 7", got)
	}
	// Reading the curtail point must not consume a firing.
	in := active.Load()
	if n := in.Fired(Search); n != 0 {
		t.Errorf("CurtailLambda consumed %d firings", n)
	}
}
