// Package faultinject provides build-tag-free, nil-by-default fault
// injection hooks for the compilation pipeline. Production code calls
// Fire at every stage boundary; with no injector activated (the default)
// the call is a single atomic load and injects nothing. Chaos tests
// activate an Injector that can inject panics, delays, stage errors and
// forced search curtailment, proving the degradation ladder in the
// pipesched package holds under every failure mode.
//
// The hooks are process-global (tests that Activate an injector must not
// run in parallel with each other), race-safe, and restored by the
// function Activate returns.
package faultinject

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one instrumented boundary of the compilation pipeline.
type Stage string

// The instrumented pipeline stages, in pipeline order.
const (
	Frontend Stage = "frontend" // parse + tuple generation
	Opt      Stage = "opt"      // classical optimizer
	DAG      Stage = "dag"      // dependence DAG construction
	Search   Stage = "search"   // branch-and-bound (or seed) scheduling
	Regalloc Stage = "regalloc" // post-scheduling register allocation
	Codegen  Stage = "codegen"  // assembly emission
)

// Stages returns every instrumented stage in pipeline order.
func Stages() []Stage {
	return []Stage{Frontend, Opt, DAG, Search, Regalloc, Codegen}
}

// Plan describes the faults to inject when a stage boundary fires.
// The zero Plan injects nothing.
type Plan struct {
	// Delay sleeps this long before the stage runs (deadline chaos).
	Delay time.Duration
	// PanicValue, when non-nil, panics with this value at the boundary.
	PanicValue any
	// Err, when non-nil (and PanicValue is nil), makes the stage fail
	// with this error without running.
	Err error
	// CurtailLambda, when > 0 on the Search stage, forces the search's
	// curtail point λ down to this many Ω invocations.
	CurtailLambda int64
	// Times bounds how many boundary crossings fire this plan;
	// 0 means every crossing (a persistent fault).
	Times int
	// Nth, when > 0, fires the plan only on the Nth crossing of the
	// stage boundary (1-based) — exactly once, fully deterministic, so a
	// chaos test reproduces the same fault at the same call every run.
	// It overrides Prob; Times is ignored (an Nth plan fires once).
	Nth int
	// Prob, when in (0, 1), fires the plan on each crossing with this
	// probability, drawn from the injector's seeded RNG (see Seed); the
	// sequence of draws is deterministic for a given seed and crossing
	// order. Prob = 0 (the default) means fire on every crossing; a
	// Times budget still applies.
	Prob float64
}

// Injector holds the per-stage fault plans of one chaos experiment.
type Injector struct {
	mu    sync.Mutex
	plans map[Stage]*planEntry
	rng   *rand.Rand
}

type planEntry struct {
	plan      Plan
	fired     int
	crossings int
}

// New returns an empty injector. Probabilistic plans draw from a fixed
// default seed; call Seed to vary it.
func New() *Injector {
	return &Injector{plans: map[Stage]*planEntry{}, rng: rand.New(rand.NewSource(1))}
}

// Seed re-seeds the RNG behind probabilistic (Prob) plans and returns
// the injector for chaining. Two runs with the same seed and the same
// crossing order inject the same faults.
func (in *Injector) Seed(seed int64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rng = rand.New(rand.NewSource(seed))
	return in
}

// Plan installs (or replaces) the fault plan for a stage and returns the
// injector for chaining.
func (in *Injector) Plan(stage Stage, p Plan) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[stage] = &planEntry{plan: p}
	return in
}

// Fired reports how many times the stage's plan has fired.
func (in *Injector) Fired(stage Stage) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if e := in.plans[stage]; e != nil {
		return e.fired
	}
	return 0
}

// Crossings reports how many times the stage's boundary has been
// crossed while its plan was installed (fired or not).
func (in *Injector) Crossings(stage Stage) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if e := in.plans[stage]; e != nil {
		return e.crossings
	}
	return 0
}

// take consumes one firing of the stage's plan, or returns nil when no
// plan applies: none installed, the Times budget is spent, this is not
// the Nth crossing, or the probabilistic draw came up empty.
func (in *Injector) take(stage Stage) *Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	e := in.plans[stage]
	if e == nil {
		return nil
	}
	e.crossings++
	switch {
	case e.plan.Nth > 0:
		if e.crossings != e.plan.Nth {
			return nil
		}
	case e.plan.Prob > 0:
		if e.plan.Times > 0 && e.fired >= e.plan.Times {
			return nil
		}
		if in.rng.Float64() >= e.plan.Prob {
			return nil
		}
	default:
		if e.plan.Times > 0 && e.fired >= e.plan.Times {
			return nil
		}
	}
	e.fired++
	p := e.plan
	return &p
}

// curtail reads the Search stage's forced curtail point without
// consuming a firing.
func (in *Injector) curtail() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if e := in.plans[Search]; e != nil {
		return e.plan.CurtailLambda
	}
	return 0
}

// active is the process-global injector; nil (the default) disables all
// injection.
var active atomic.Pointer[Injector]

// Activate installs in as the process-global injector (nil deactivates)
// and returns a function restoring the previous one. Intended for tests:
//
//	defer faultinject.Activate(faultinject.New().
//		Plan(faultinject.Search, faultinject.Plan{PanicValue: "boom"}))()
func Activate(in *Injector) (restore func()) {
	prev := active.Swap(in)
	return func() { active.Store(prev) }
}

// Fire runs the faults planned for a stage boundary: it sleeps the
// planned delay, panics with the planned value, or returns the planned
// error. With no active injector (production) it is a no-op.
func Fire(stage Stage) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	p := in.take(stage)
	if p == nil {
		return nil
	}
	if p.Delay > 0 {
		time.Sleep(p.Delay)
	}
	if p.PanicValue != nil {
		panic(p.PanicValue)
	}
	return p.Err
}

// CurtailLambda returns the forced curtail point for the search stage,
// or 0 when none is planned.
func CurtailLambda() int64 {
	in := active.Load()
	if in == nil {
		return 0
	}
	return in.curtail()
}
