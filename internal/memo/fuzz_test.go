package memo

import "testing"

// FuzzCanonKey drives the canonicalizer with arbitrary states decoded
// from raw bytes and checks its two defining guarantees:
//
//   - renumbered isomorphic states collide: shifting every absolute tick
//     (deadlines AND lastIssue) by the same delta, or permuting the pair
//     insertion order, must not change the key;
//   - distinct residual pipeline states do not collide: bumping any LIVE
//     pipe residual, in-flight residual, or the scheduled set must
//     change the key.
func FuzzCanonKey(f *testing.F) {
	f.Add([]byte{8, 3, 0b10100101, 2, 12, 9, 2, 1, 14, 4, 11, 1, 6, 13})
	f.Add([]byte{1, 0, 0, 1, 5, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := byteReader{data: data}
		n := int(r.next())%62 + 2 // 2..63 nodes
		lastIssue := int(r.next()) % 100
		shift := int(r.next())%50 + 1

		var scheduled []int
		maskByte := r.next()
		for u := 0; u < n; u++ {
			if maskByte&(1<<(u%8)) != 0 {
				scheduled = append(scheduled, u)
			}
			if u%8 == 7 {
				maskByte = r.next()
			}
		}
		numPipes := int(r.next())%4 + 1
		pipeDeadline := make([]int, numPipes)
		for i := range pipeDeadline {
			pipeDeadline[i] = lastIssue - 3 + int(r.next())%12
		}
		var inflight, ready [][2]int
		for i := 0; i < int(r.next())%4; i++ {
			inflight = append(inflight, [2]int{int(r.next()) % n, lastIssue - 2 + int(r.next())%10})
		}
		for i := 0; i < int(r.next())%3; i++ {
			ready = append(ready, [2]int{int(r.next()) % n, lastIssue - 2 + int(r.next())%10})
		}
		dedupeNodes(inflight)
		dedupeNodes(ready)

		var c Canon
		base := buildKey(&c, n, scheduled, lastIssue, pipeDeadline, inflight, ready)

		// Isomorphism 1: time translation.
		shifted := buildKey(&c, n, scheduled, lastIssue+shift,
			shiftAll(pipeDeadline, shift), shiftPairs(inflight, shift), shiftPairs(ready, shift))
		if base != shifted {
			t.Fatalf("time-shifted state got a different key\nstate: n=%d sched=%v last=%d pipes=%v in=%v rdy=%v shift=%d",
				n, scheduled, lastIssue, pipeDeadline, inflight, ready, shift)
		}

		// Isomorphism 2: pair insertion order.
		if len(inflight) > 1 {
			perm := append([][2]int{inflight[len(inflight)-1]}, inflight[:len(inflight)-1]...)
			if buildKey(&c, n, scheduled, lastIssue, pipeDeadline, perm, ready) != base {
				t.Fatalf("pair order changed the key: %v", inflight)
			}
		}

		// Distinctness: bump each LIVE constraint and require a new key.
		for i := range pipeDeadline {
			mut := append([]int(nil), pipeDeadline...)
			if Residual(mut[i], lastIssue) == 0 {
				mut[i] = lastIssue + 2 // bring a dead constraint to life
			} else {
				mut[i]++
			}
			if buildKey(&c, n, scheduled, lastIssue, mut, inflight, ready) == base {
				t.Fatalf("pipe %d residual change did not change the key (pipes %v -> %v, last=%d)",
					i, pipeDeadline, mut, lastIssue)
			}
		}
		for i := range inflight {
			if Residual(inflight[i][1], lastIssue) == 0 {
				continue // dead constraint: vanishing by design
			}
			mut := append([][2]int(nil), inflight...)
			mut[i][1]++
			if buildKey(&c, n, scheduled, lastIssue, pipeDeadline, mut, ready) == base {
				t.Fatalf("in-flight %v residual change did not change the key", inflight[i])
			}
		}
		if len(scheduled) < n {
			grown := scheduled
			for u := 0; u < n; u++ {
				if !contains(scheduled, u) {
					grown = append(append([]int(nil), scheduled...), u)
					break
				}
			}
			if buildKey(&c, n, grown, lastIssue, pipeDeadline, inflight, ready) == base {
				t.Fatalf("scheduled-set change did not change the key (%v -> %v)", scheduled, grown)
			}
		}
	})
}

type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		// Deterministic tail so short inputs still decode full states.
		r.pos++
		return byte(r.pos * 37)
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func shiftAll(xs []int, d int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x + d
	}
	return out
}

func shiftPairs(ps [][2]int, d int) [][2]int {
	out := make([][2]int, len(ps))
	for i, p := range ps {
		out[i] = [2]int{p[0], p[1] + d}
	}
	return out
}

// dedupeNodes keeps, for duplicate nodes, only the larger deadline —
// mirroring the search, where a node contributes one constraint.
func dedupeNodes(ps [][2]int) {
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			if ps[j][0] == ps[i][0] {
				if ps[j][1] > ps[i][1] {
					ps[i][1] = ps[j][1]
				}
				ps[j][1] = 0 // expires; Pair drops it
			}
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
