package memo

import (
	"testing"
)

// buildKey assembles a key from one state description: scheduled nodes,
// per-pipe enqueue deadlines, in-flight (node, deadline) and ready
// (node, deadline) constraints, all in ABSOLUTE ticks relative to
// lastIssue — exercising exactly the translation the search performs.
func buildKey(c *Canon, n int, scheduled []int, lastIssue int, pipeDeadline []int, inflight, ready [][2]int) string {
	c.Begin(n)
	for _, u := range scheduled {
		c.MarkScheduled(u)
	}
	res := make([]int, len(pipeDeadline))
	for i, d := range pipeDeadline {
		res[i] = Residual(d, lastIssue)
	}
	c.Pipes(res)
	for _, p := range inflight {
		c.Pair(p[0], Residual(p[1], lastIssue))
	}
	c.SealPairs()
	for _, p := range ready {
		c.Pair(p[0], Residual(p[1], lastIssue))
	}
	c.SealPairs()
	return c.Key()
}

func TestResidual(t *testing.T) {
	if r := Residual(10, 6); r != 3 {
		t.Fatalf("Residual(10,6) = %d, want 3", r)
	}
	if r := Residual(7, 6); r != 0 {
		t.Fatalf("Residual(7,6) = %d, want 0 (constraint satisfied at next issue)", r)
	}
	if r := Residual(2, 6); r != 0 {
		t.Fatalf("Residual(2,6) = %d, want 0 (expired)", r)
	}
}

// TestKeyTranslationInvariance: the same residual problem occurring at
// different absolute ticks must produce the same key.
func TestKeyTranslationInvariance(t *testing.T) {
	var c Canon
	a := buildKey(&c, 12, []int{0, 2, 5}, 9,
		[]int{11, 9}, [][2]int{{2, 13}, {5, 11}}, [][2]int{{7, 12}})
	for _, shift := range []int{1, 7, 100} {
		b := buildKey(&c, 12, []int{0, 2, 5}, 9+shift,
			[]int{11 + shift, 9 + shift},
			[][2]int{{2, 13 + shift}, {5, 11 + shift}},
			[][2]int{{7, 12 + shift}})
		if a != b {
			t.Fatalf("shift %d: keys differ for time-translated states", shift)
		}
	}
}

// TestKeyExpiredConstraintsVanish: dead history — drained pipes, landed
// producers — must not perturb the key.
func TestKeyExpiredConstraintsVanish(t *testing.T) {
	var c Canon
	a := buildKey(&c, 8, []int{1, 3}, 20,
		[]int{5, 21}, [][2]int{{1, 9}, {3, 24}}, nil)
	b := buildKey(&c, 8, []int{1, 3}, 20,
		[]int{17, 21}, [][2]int{{3, 24}}, nil)
	if a != b {
		t.Fatal("states differing only in expired constraints must collide")
	}
}

// TestKeyDistinguishesLiveState: any live difference — scheduled set,
// a pipe residual, an in-flight residual, or which section a pair sits
// in — must produce distinct keys.
func TestKeyDistinguishesLiveState(t *testing.T) {
	var c Canon
	base := buildKey(&c, 8, []int{1, 3}, 10, []int{12, 11}, [][2]int{{3, 14}}, [][2]int{{5, 13}})
	variants := []string{
		buildKey(&c, 8, []int{1, 4}, 10, []int{12, 11}, [][2]int{{3, 14}}, [][2]int{{5, 13}}),
		buildKey(&c, 8, []int{1, 3}, 10, []int{13, 11}, [][2]int{{3, 14}}, [][2]int{{5, 13}}),
		buildKey(&c, 8, []int{1, 3}, 10, []int{12, 11}, [][2]int{{3, 15}}, [][2]int{{5, 13}}),
		buildKey(&c, 8, []int{1, 3}, 10, []int{12, 11}, [][2]int{{3, 14}, {5, 13}}, nil),
		buildKey(&c, 8, []int{1, 3}, 10, []int{12, 11}, nil, [][2]int{{3, 14}, {5, 13}}),
		buildKey(&c, 9, []int{1, 3}, 10, []int{12, 11}, [][2]int{{3, 14}}, [][2]int{{5, 13}}),
	}
	for i, v := range variants {
		if v == base {
			t.Fatalf("variant %d: live-state difference did not change the key", i)
		}
	}
}

// TestKeyPairOrderIrrelevant: pairs arrive in search-dependent order but
// the key must be canonical.
func TestKeyPairOrderIrrelevant(t *testing.T) {
	var c Canon
	a := buildKey(&c, 8, []int{0}, 5, []int{7}, [][2]int{{1, 9}, {4, 8}, {2, 11}}, nil)
	b := buildKey(&c, 8, []int{0}, 5, []int{7}, [][2]int{{2, 11}, {1, 9}, {4, 8}}, nil)
	if a != b {
		t.Fatal("pair insertion order changed the key")
	}
}

func TestTableDominance(t *testing.T) {
	tb := NewTable(2)
	if tb.Dominated("k1", 5, 0) {
		t.Fatal("empty table claimed dominance")
	}
	tb.Store("k1", 5, 0)
	if !tb.Dominated("k1", 5, 0) || !tb.Dominated("k1", 7, 0) {
		t.Fatal("equal/worse revisit not dominated")
	}
	if tb.Dominated("k1", 4, 0) {
		t.Fatal("strictly better revisit wrongly dominated")
	}
	tb.Store("k1", 3, 0) // improvement lands
	if !tb.Dominated("k1", 3, 0) {
		t.Fatal("improved entry not effective")
	}
	tb.Store("k2", 1, 0)
	tb.Store("k3", 1, 0) // over capacity: dropped
	if tb.Len() != 2 {
		t.Fatalf("table grew past its cap: %d entries", tb.Len())
	}
	if tb.Dominated("k3", 9, 9) {
		t.Fatal("dropped key claimed dominance")
	}
	tb.Store("k1", 2, 0) // improvements still land when full
	if !tb.Dominated("k1", 2, 0) {
		t.Fatal("improvement at capacity did not land")
	}
	hits, misses, stores, dropped := tb.Stats()
	if hits == 0 || misses == 0 || stores != 2 || dropped != 1 {
		t.Fatalf("stats hits=%d misses=%d stores=%d dropped=%d", hits, misses, stores, dropped)
	}
}

// TestTablePairDominance: dominance must be component-wise over
// (cost, live) — a lower cost with a higher pressure-so-far does NOT
// dominate, and vice versa.
func TestTablePairDominance(t *testing.T) {
	tb := NewTable(0)
	tb.Store("k", 5, 3)
	if !tb.Dominated("k", 5, 3) || !tb.Dominated("k", 6, 3) || !tb.Dominated("k", 5, 4) {
		t.Fatal("component-wise worse revisit not dominated")
	}
	if tb.Dominated("k", 4, 9) {
		t.Fatal("lower-cost/higher-live revisit wrongly dominated")
	}
	if tb.Dominated("k", 9, 2) {
		t.Fatal("higher-cost/lower-live revisit wrongly dominated")
	}
	// An incomparable pair must not replace the stored one (either order
	// of arrival keeps a sound table): after storing (4,9), (5,3) must
	// still dominate revisits it dominated before.
	tb.Store("k", 4, 9)
	if !tb.Dominated("k", 6, 3) {
		t.Fatal("incomparable Store clobbered the existing record")
	}
	// A pair dominating on both axes replaces the record.
	tb.Store("k", 4, 2)
	if !tb.Dominated("k", 4, 2) {
		t.Fatal("dominating improvement did not land")
	}
}
