// Package memo is the search's transposition/dominance table. Different
// branches of the B&B permutation tree frequently reach the SAME residual
// scheduling problem — the same set of instructions scheduled, the same
// pipelines busy for the same number of future ticks, the same producers
// still in flight — having paid different NOP costs to get there. The
// minimum cost of COMPLETING such a state depends only on the state, so
// once one branch has fully explored it, any later branch arriving with
// an equal-or-worse cost-so-far is dominated and can be pruned.
//
// The table is keyed by a canonical encoding of the state (package-level
// Canon builder) designed so that two states with identical completion
// spaces collide:
//
//   - All timing is RELATIVE to the last issue tick. Two occurrences of
//     the same residual problem at different absolute ticks — "renumbered"
//     states, the common case along permuted prefixes — produce the same
//     key, because a completion's tick count beyond lastIssue is
//     translation-invariant.
//   - Expired constraints vanish. A pipeline whose enqueue conflict has
//     drained, or an in-flight producer whose result is already
//     available, contributes nothing, so states differing only in dead
//     history collide.
//   - Live constraints are encoded exactly. Distinct residual pipeline
//     states, in-flight latencies, or external ready times produce
//     distinct keys (the encoding is section-length-prefixed and
//     prefix-unambiguous), so dominance is never claimed across states
//     with different futures.
//
// Soundness of the prune (DESIGN.md §11): entries are stored only after
// a state's subtree has been fully explored (never on a curtailed
// subtree), and an entry records the cost-so-far at which that happened.
// A later visit with cost ≥ recorded cost cannot contain a completion
// that beats what the recorded visit already saw or pruned against a
// then-weaker-or-equal incumbent, so discarding it never changes the
// search's returned cost — only the work done to find it.
//
// The table is bounded: once full it stops admitting NEW keys (lookups
// and in-place improvements continue), so memory stays capped without
// an eviction policy that could break reproducibility.
package memo

import "encoding/binary"

// Residual converts an absolute tick constraint to the canonical
// relative form: the number of ticks after lastIssue+1 (the earliest
// possible next issue) the constraint still binds. Expired constraints
// clamp to zero, making them disappear from keys.
func Residual(deadline, lastIssue int) int {
	if r := deadline - (lastIssue + 1); r > 0 {
		return r
	}
	return 0
}

// Canon accumulates one state's canonical key. The caller contributes
// sections in a fixed order — scheduled set, per-pipeline residuals,
// in-flight producers, external ready times — and each section is
// length- or width-delimited, so no two distinct section sequences can
// encode to the same bytes. Reuse one Canon per searcher; Begin resets.
type Canon struct {
	buf    []byte
	mask   []byte
	sealed bool
	n      int

	pairs   [][2]int // (node, residual) for the current section
	scratch [binary.MaxVarintLen64]byte
}

// Begin starts a fresh key for an n-node block.
func (c *Canon) Begin(n int) {
	c.buf = c.buf[:0]
	c.n = n
	need := (n + 7) / 8
	if cap(c.mask) < need {
		c.mask = make([]byte, need)
	}
	c.mask = c.mask[:need]
	for i := range c.mask {
		c.mask[i] = 0
	}
	c.sealed = false
	c.pairs = c.pairs[:0]
	c.putUvarint(uint64(n))
}

// MarkScheduled records node u as part of the scheduled prefix. Order of
// calls is irrelevant (the set is a bitmask).
func (c *Canon) MarkScheduled(u int) { c.mask[u>>3] |= 1 << (u & 7) }

func (c *Canon) putUvarint(v uint64) {
	k := binary.PutUvarint(c.scratch[:], v)
	c.buf = append(c.buf, c.scratch[:k]...)
}

// sealMask appends the scheduled bitmask; called lazily by the first
// post-mask section.
func (c *Canon) sealMask() {
	if !c.sealed {
		c.buf = append(c.buf, c.mask...)
		c.sealed = true
	}
}

// Pipes appends the per-pipeline enqueue residuals, one per pipeline in
// machine table order (fixed arity ⇒ self-delimiting). Call exactly once,
// after all MarkScheduled calls.
func (c *Canon) Pipes(residuals []int) {
	c.sealMask()
	c.putUvarint(uint64(len(residuals)))
	for _, r := range residuals {
		c.putUvarint(uint64(r))
	}
	c.pairs = c.pairs[:0]
}

// Pair records one (node, residual) constraint for the CURRENT section —
// in-flight flow producers after Pipes, external ready times after
// SealPairs. Zero residuals are dropped (expired constraints must not
// perturb the key); nodes may arrive in any order (pairs are sorted at
// seal time).
func (c *Canon) Pair(node, residual int) {
	if residual <= 0 {
		return
	}
	c.pairs = append(c.pairs, [2]int{node, residual})
}

// SealPairs closes the current (node, residual) section, sorting and
// length-prefixing it, and opens the next. Call once after the in-flight
// pairs and once after the ready pairs.
func (c *Canon) SealPairs() {
	// Insertion sort by node: sections are small (live constraints only)
	// and a node appears at most once per section.
	for i := 1; i < len(c.pairs); i++ {
		for j := i; j > 0 && c.pairs[j][0] < c.pairs[j-1][0]; j-- {
			c.pairs[j], c.pairs[j-1] = c.pairs[j-1], c.pairs[j]
		}
	}
	c.putUvarint(uint64(len(c.pairs)))
	for _, p := range c.pairs {
		c.putUvarint(uint64(p[0]))
		c.putUvarint(uint64(p[1]))
	}
	c.pairs = c.pairs[:0]
}

// Key returns the accumulated canonical key. The returned string is
// immutable and safe to use as a map key after the next Begin.
func (c *Canon) Key() string {
	c.sealMask()
	return string(c.buf)
}

// DefaultCap is the default bound on table entries: at ~40 bytes of key
// plus map overhead per entry this keeps a table under ~50 MB.
const DefaultCap = 1 << 18

// record is one stored visit: the (cost-so-far, peak-pressure-so-far)
// pair at which the state's subtree was fully explored. Paper-mode
// searches pass live=0 everywhere, collapsing the pair back to the
// single-cost table.
type record struct {
	cost int32
	live int32
}

// dominates reports component-wise dominance: r is at least as good as
// (cost, live) on BOTH axes. A packed or summed comparison would be
// unsound — a visit with lower cost but higher pressure-so-far does not
// bound the lexicographic or constrained value of a later visit's
// completions (DESIGN.md §15 carries the full argument).
func (r record) dominates(cost, live int32) bool {
	return r.cost <= cost && r.live <= live
}

// Table is a bounded map from canonical state key to the best
// (cost-so-far, peak-pressure-so-far) pair at which the state's subtree
// has been fully explored. It is NOT safe for concurrent use; parallel
// searches hold one per worker.
type Table struct {
	m   map[string]record
	cap int

	hits    int64
	misses  int64
	stores  int64
	dropped int64 // stores refused because the table was full
}

// NewTable creates a table bounded to capEntries keys (<= 0 selects
// DefaultCap).
func NewTable(capEntries int) *Table {
	if capEntries <= 0 {
		capEntries = DefaultCap
	}
	return &Table{m: make(map[string]record), cap: capEntries}
}

// Dominated reports whether a previous visit to key completed its
// subtree at cost-so-far <= cost AND peak-pressure-so-far <= live —
// i.e. whether the current visit is dominated on both axes and may be
// pruned. Modes that do not track pressure pass live = 0.
func (t *Table) Dominated(key string, cost, live int) bool {
	if rec, ok := t.m[key]; ok && rec.dominates(int32(cost), int32(live)) {
		t.hits++
		return true
	}
	t.misses++
	return false
}

// Store records that key's subtree has been fully explored at the given
// (cost-so-far, peak-pressure-so-far). The table keeps one pair per key:
// a new pair replaces the old only when it dominates it component-wise
// (any genuinely reached pair makes Dominated sound, so which pair is
// kept is purely a hit-rate heuristic). New keys are dropped once the
// table is full; dominating improvements to existing keys always land.
func (t *Table) Store(key string, cost, live int) {
	rec := record{cost: int32(cost), live: int32(live)}
	if old, ok := t.m[key]; ok {
		if rec.dominates(old.cost, old.live) && rec != old {
			t.m[key] = rec
		}
		return
	}
	if len(t.m) >= t.cap {
		t.dropped++
		return
	}
	t.m[key] = rec
	t.stores++
}

// Len returns the number of stored states.
func (t *Table) Len() int { return len(t.m) }

// Stats returns cumulative lookup/store counters: dominance hits, lookup
// misses, stored states, and stores dropped at capacity.
func (t *Table) Stats() (hits, misses, stores, dropped int64) {
	return t.hits, t.misses, t.stores, t.dropped
}
