package listsched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/dag"
	"pipesched/internal/ir"
)

func mustGraph(t *testing.T, src string) *dag.Graph {
	t.Helper()
	b, err := ir.ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dag.Build(b)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestScheduleIsLegalAllPriorities(t *testing.T) {
	g := mustGraph(t, `fig3:
  1: Const 15
  2: Store #b, @1
  3: Load #a
  4: Mul @1, @3
  5: Store #a, @4`)
	for _, p := range []Priority{ByHeight, ByDescendants, ProgramOrder} {
		order := Schedule(g, p)
		if !g.IsLegalOrder(order) {
			t.Errorf("%s: order %v is illegal", p, order)
		}
	}
}

func TestByHeightSchedulesLongChainFirst(t *testing.T) {
	// Node 0 starts a 3-deep chain; node 4 is an isolated store feeder.
	g := mustGraph(t, `chain:
  1: Load #a
  2: Neg @1
  3: Neg @2
  4: Store #r, @3
  5: Load #z
  6: Store #s, @5`)
	order := Schedule(g, ByHeight)
	if order[0] != 0 {
		t.Errorf("ByHeight should start the long chain first, got %v", order)
	}
	// The independent Load #z should be interleaved before the chain's
	// end, giving the chain's dependents distance.
	dist := MeanDefUseDistance(g, order)
	prog := []int{0, 1, 2, 3, 4, 5}
	if dist < MeanDefUseDistance(g, prog) {
		t.Errorf("ByHeight def-use distance %.2f worse than program order %.2f", dist,
			MeanDefUseDistance(g, prog))
	}
}

func TestProgramOrderPriorityKeepsOriginalWhenLegal(t *testing.T) {
	g := mustGraph(t, `po:
  1: Load #a
  2: Load #b
  3: Add @1, @2
  4: Store #c, @3`)
	order := Schedule(g, ProgramOrder)
	for i, u := range order {
		if u != i {
			t.Errorf("ProgramOrder gave %v, want identity", order)
			break
		}
	}
}

func TestPriorityString(t *testing.T) {
	if ByHeight.String() != "height" || ByDescendants.String() != "descendants" ||
		ProgramOrder.String() != "program" {
		t.Error("Priority.String names wrong")
	}
	if Priority(9).String() == "" {
		t.Error("unknown priority must still render")
	}
}

func TestDeterminism(t *testing.T) {
	g := mustGraph(t, `det:
  1: Load #a
  2: Load #b
  3: Load #c
  4: Add @1, @2
  5: Mul @4, @3
  6: Store #r, @5`)
	first := Schedule(g, ByHeight)
	for i := 0; i < 5; i++ {
		again := Schedule(g, ByHeight)
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d differs: %v vs %v", i, first, again)
			}
		}
	}
}

func randomBlock(rng *rand.Rand, n int) *ir.Block {
	b := ir.NewBlock("rand")
	vars := []string{"a", "b", "c", "d"}
	var ids []int
	for i := 0; i < n; i++ {
		switch k := rng.Intn(6); {
		case k <= 1 || len(ids) == 0:
			ids = append(ids, b.Append(ir.Load, ir.Var(vars[rng.Intn(len(vars))]), ir.None()))
		case k == 2:
			b.Append(ir.Store, ir.Var(vars[rng.Intn(len(vars))]), ir.Ref(ids[rng.Intn(len(ids))]))
		default:
			ops := []ir.Op{ir.Add, ir.Sub, ir.Mul}
			ids = append(ids, b.Append(ops[rng.Intn(len(ops))],
				ir.Ref(ids[rng.Intn(len(ids))]), ir.Ref(ids[rng.Intn(len(ids))])))
		}
	}
	return b
}

func TestAlwaysLegalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := dag.Build(randomBlock(rng, 3+rng.Intn(15)))
		if err != nil {
			return false
		}
		for _, p := range []Priority{ByHeight, ByDescendants, ProgramOrder} {
			if !g.IsLegalOrder(Schedule(g, p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMeanDefUseDistanceEmptyAndSingle(t *testing.T) {
	g := mustGraph(t, `one:
  1: Load #a`)
	if d := MeanDefUseDistance(g, []int{0}); d != 0 {
		t.Errorf("distance of edgeless graph = %f, want 0", d)
	}
}
