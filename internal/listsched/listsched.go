// Package listsched produces the initial heuristic schedule that seeds
// the optimal search (the paper's section 3.2).
//
// The heuristic follows [ZaD90]'s objective: arrange the tuples so that
// the distance between each instruction and the instructions that depend
// on it is as large as possible. We realize that as greedy topological
// list scheduling by decreasing DAG height (longest dependence path below
// the node): producers on long chains issue as early as possible, pushing
// their consumers as far away as the dependence structure allows.
//
// As the paper requires (section 4.1), the list scheduler never consults
// the pipeline description tables — the seed order depends only on the
// DAG, not on the target machine.
package listsched

import (
	"fmt"

	"pipesched/internal/dag"
)

// Priority selects the tie-breaking discipline of the list scheduler.
type Priority uint8

const (
	// ByHeight picks the ready node with the greatest height (longest
	// path of dependents below it); ties go to more immediate successors,
	// then more transitive descendants, then program order. This is the
	// default seed heuristic.
	ByHeight Priority = iota
	// ByDescendants picks the ready node with the most transitive
	// descendants; ties by height, then program order.
	ByDescendants
	// ProgramOrder keeps ready nodes in original program order — the
	// weakest seed, useful as an ablation baseline.
	ProgramOrder
)

// String names the priority discipline.
func (p Priority) String() string {
	switch p {
	case ByHeight:
		return "height"
	case ByDescendants:
		return "descendants"
	case ProgramOrder:
		return "program"
	}
	return fmt.Sprintf("Priority(%d)", uint8(p))
}

// Schedule returns a legal topological order of g chosen by the given
// priority discipline. The result is deterministic.
func Schedule(g *dag.Graph, prio Priority) []int {
	remaining := make([]int, g.N)
	inReady := make([]bool, g.N)
	for u := 0; u < g.N; u++ {
		remaining[u] = len(g.Preds[u])
	}
	order := make([]int, 0, g.N)
	for len(order) < g.N {
		best := -1
		for u := 0; u < g.N; u++ {
			if inReady[u] || remaining[u] != 0 {
				continue
			}
			if best < 0 || better(g, prio, u, best) {
				best = u
			}
		}
		if best < 0 {
			// Cannot happen for a valid DAG; defensive.
			panic("listsched: no ready node in acyclic graph")
		}
		order = append(order, best)
		inReady[best] = true
		for _, d := range g.Succs[best] {
			remaining[d.Node]--
		}
	}
	return order
}

// better reports whether ready node u beats ready node v under prio.
func better(g *dag.Graph, prio Priority, u, v int) bool {
	switch prio {
	case ByHeight:
		if g.Height(u) != g.Height(v) {
			return g.Height(u) > g.Height(v)
		}
		if len(g.Succs[u]) != len(g.Succs[v]) {
			return len(g.Succs[u]) > len(g.Succs[v])
		}
		if g.NumDescendants(u) != g.NumDescendants(v) {
			return g.NumDescendants(u) > g.NumDescendants(v)
		}
		return u < v
	case ByDescendants:
		if g.NumDescendants(u) != g.NumDescendants(v) {
			return g.NumDescendants(u) > g.NumDescendants(v)
		}
		if g.Height(u) != g.Height(v) {
			return g.Height(u) > g.Height(v)
		}
		return u < v
	default: // ProgramOrder
		return u < v
	}
}

// MeanDefUseDistance measures the heuristic's own objective on a
// schedule: the average distance (in positions) between each node and its
// immediate dependents. Larger is better for hiding latency.
func MeanDefUseDistance(g *dag.Graph, order []int) float64 {
	pos := make([]int, g.N)
	for i, u := range order {
		pos[u] = i
	}
	sum, count := 0, 0
	for u := 0; u < g.N; u++ {
		for _, d := range g.Succs[u] {
			sum += pos[d.Node] - pos[u]
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}
