package netchaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"pipesched/internal/telemetry"
)

// payloadServer is a TCP backend that writes payload to every
// connection and closes cleanly. Returns its address and a closer.
func payloadServer(t *testing.T, payload []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = c.Write(payload)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// dialRead connects through the proxy and reads until EOF or error,
// returning whatever arrived and the terminal error.
func dialRead(t *testing.T, addr string) ([]byte, error) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer c.Close()
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf bytes.Buffer
	_, rerr := io.Copy(&buf, c)
	return buf.Bytes(), rerr
}

func newProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:0", target, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestProxyPassThrough(t *testing.T) {
	payload := bytes.Repeat([]byte("pipesched"), 100)
	p := newProxy(t, payloadServer(t, payload))
	got, err := dialRead(t, p.Addr())
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted in transit: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestProxyLatency(t *testing.T) {
	payload := []byte("slow answer")
	p := newProxy(t, payloadServer(t, payload))
	p.SetPlan(Plan{Latency: 150 * time.Millisecond}, 1)
	start := time.Now()
	got, err := dialRead(t, p.Addr())
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read: %v (%d bytes)", err, len(got))
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("latency fault not applied: elapsed %v", elapsed)
	}
	if p.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", p.Fired())
	}
}

func TestProxyDropMidBody(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 64<<10)
	p := newProxy(t, payloadServer(t, payload))
	p.SetPlan(Plan{DropAfter: 1024}, 1)
	got, err := dialRead(t, p.Addr())
	if err == nil {
		t.Fatalf("dropped connection must surface a read error, got clean EOF after %d bytes", len(got))
	}
	if len(got) >= len(payload) {
		t.Fatal("drop fault forwarded the whole payload")
	}
}

func TestProxyTruncate(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 64<<10)
	p := newProxy(t, payloadServer(t, payload))
	p.SetPlan(Plan{TruncateAfter: 2048}, 1)
	got, err := dialRead(t, p.Addr())
	// Truncation is a CLEAN close: the client sees a normal EOF around a
	// short document — the JSON layer's "unexpected EOF", not a reset.
	if err != nil {
		t.Fatalf("truncate must close cleanly, got %v", err)
	}
	if int64(len(got)) != 2048 {
		t.Fatalf("got %d bytes, want exactly 2048", len(got))
	}
}

func TestProxyPartition(t *testing.T) {
	payload := []byte("reachable")
	p := newProxy(t, payloadServer(t, payload))

	// Healthy first.
	if got, err := dialRead(t, p.Addr()); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("pre-partition read: %v", err)
	}

	p.Partition(true)
	if !p.Partitioned() {
		t.Fatal("Partitioned() = false after Partition(true)")
	}
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err == nil {
		// Accept-then-reset: the dial may succeed but the first read dies.
		_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, rerr := c.Read(buf); rerr == nil {
			t.Fatal("read succeeded across a partition")
		}
		c.Close()
	}

	// Heal: traffic flows again without a new listener.
	p.Partition(false)
	if got, err := dialRead(t, p.Addr()); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-heal read: %v", err)
	}
}

func TestProxyPartitionSeversExisting(t *testing.T) {
	// Backend that writes forever until its conn dies.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				chunk := bytes.Repeat([]byte("z"), 1024)
				for {
					if _, err := c.Write(chunk); err != nil {
						return
					}
					time.Sleep(10 * time.Millisecond)
				}
			}(c)
		}
	}()

	p := newProxy(t, ln.Addr().String())
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 1024)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("stream not flowing before partition: %v", err)
	}

	p.Partition(true)
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Drain whatever was in flight; the stream must die, not hang.
	for {
		if _, err := c.Read(buf); err != nil {
			return // severed — pass
		}
	}
}

func TestProxyNthDeterminism(t *testing.T) {
	payload := bytes.Repeat([]byte("d"), 8192)
	target := payloadServer(t, payload)
	// Two identical runs: the 2nd connection faults, the others don't.
	for run := 0; run < 2; run++ {
		p := newProxy(t, target)
		p.SetPlan(Plan{DropAfter: 512, Nth: 2}, 42)
		for i := 1; i <= 3; i++ {
			got, err := dialRead(t, p.Addr())
			if i == 2 {
				if err == nil {
					t.Fatalf("run %d conn %d: Nth=2 plan did not fire", run, i)
				}
				continue
			}
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("run %d conn %d: unfaulted connection failed: %v", run, i, err)
			}
		}
		if p.Fired() != 1 {
			t.Fatalf("run %d: Fired = %d, want 1", run, p.Fired())
		}
		p.Close()
	}
}

func TestProxyTimesBudget(t *testing.T) {
	payload := bytes.Repeat([]byte("b"), 8192)
	p := newProxy(t, payloadServer(t, payload))
	p.SetPlan(Plan{DropAfter: 512, Times: 2}, 7)
	failures := 0
	for i := 0; i < 5; i++ {
		if _, err := dialRead(t, p.Addr()); err != nil {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("failures = %d, want exactly the Times=2 budget", failures)
	}
	if p.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", p.Fired())
	}
}

func TestProxySetTargetSeversAndRepoints(t *testing.T) {
	oldPayload := []byte("old worker")
	newPayload := []byte("new worker")
	p := newProxy(t, payloadServer(t, oldPayload))
	if got, _ := dialRead(t, p.Addr()); !bytes.Equal(got, oldPayload) {
		t.Fatalf("pre-retarget read: %q", got)
	}
	p.SetTarget(payloadServer(t, newPayload))
	if got, _ := dialRead(t, p.Addr()); !bytes.Equal(got, newPayload) {
		t.Fatalf("post-retarget read: %q", got)
	}
}

func TestProxyBandwidthCap(t *testing.T) {
	payload := bytes.Repeat([]byte("w"), 4096)
	p := newProxy(t, payloadServer(t, payload))
	// 16 KiB/s over 4 KiB ≈ 250ms minimum.
	p.SetPlan(Plan{BandwidthBPS: 16 << 10}, 1)
	start := time.Now()
	got, err := dialRead(t, p.Addr())
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read: %v (%d bytes)", err, len(got))
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("bandwidth cap not applied: %d bytes in %v", len(got), elapsed)
	}
}
