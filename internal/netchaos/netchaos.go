// Package netchaos is an in-path TCP fault-injection proxy for the
// process-fleet chaos tests: it sits between the router's RemoteNode
// and a worker process and injects the failures real networks produce —
// latency, bandwidth caps, connection drops mid-body, response
// truncation, and full partitions.
//
// Faults are driven by deterministic/seeded Plans in the idiom of
// internal/faultinject: an Nth plan fires on exactly the Nth connection
// every run; a Prob plan draws from a seeded RNG so a failing soak
// reproduces with its logged seed; Times bounds the blast radius. A
// partition is a switch, not a plan: flip it on and every existing
// connection is severed while new ones die at accept.
package netchaos

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"pipesched/internal/telemetry"
)

// Plan describes the faults to inject on connections crossing the
// proxy. The zero Plan forwards everything untouched.
type Plan struct {
	// Latency sleeps this long before any upstream byte is forwarded to
	// the client (connection-level added RTT).
	Latency time.Duration
	// BandwidthBPS caps the upstream→client copy rate in bytes/second
	// (0 = unlimited). The cap shapes the response stream, which is
	// where compile answers travel.
	BandwidthBPS int
	// DropAfter, when > 0, severs the connection with a hard reset after
	// that many upstream→client bytes — the client sees a connection
	// reset mid-body.
	DropAfter int64
	// TruncateAfter, when > 0 (and DropAfter is 0), closes the client
	// side cleanly after that many upstream→client bytes — the client
	// sees a well-formed TCP close around a truncated JSON document.
	TruncateAfter int64
	// Times bounds how many connections this plan faults; 0 means every
	// eligible connection.
	Times int
	// Nth, when > 0, faults only the Nth accepted connection (1-based) —
	// fully deterministic. Overrides Prob; Times is ignored.
	Nth int
	// Prob, when in (0, 1), faults each connection with this
	// probability, drawn from the proxy's seeded RNG. 0 means fault
	// every connection (a Times budget still applies).
	Prob float64
}

// faulty reports whether the plan does anything at all.
func (p Plan) faulty() bool {
	return p.Latency > 0 || p.BandwidthBPS > 0 || p.DropAfter > 0 || p.TruncateAfter > 0
}

// metrics is the proxy metric set; nil fields are no-ops.
type metrics struct {
	conns  *telemetry.Counter            // pipesched_netchaos_connections_total
	active *telemetry.Gauge              // pipesched_netchaos_active_conns
	faults map[string]*telemetry.Counter // pipesched_netchaos_faults_total{kind}
}

func newMetrics(reg *telemetry.Registry) *metrics {
	m := &metrics{faults: map[string]*telemetry.Counter{}}
	if reg == nil {
		return m
	}
	m.conns = reg.Counter("pipesched_netchaos_connections_total", "Connections accepted by the chaos proxy.")
	m.active = reg.Gauge("pipesched_netchaos_active_conns", "Connections currently flowing through the chaos proxy.")
	for _, kind := range []string{"latency", "bandwidth", "drop", "truncate", "partition"} {
		m.faults[kind] = reg.Counter("pipesched_netchaos_faults_total",
			"Faults injected by the chaos proxy, by kind.", "kind", kind)
	}
	return m
}

func (m *metrics) fault(kind string) { m.faults[kind].Inc() }

// Proxy is one in-path chaos proxy: listen address fixed for its
// lifetime (the router points at it), target retargetable (the worker
// behind it changes port on every restart).
type Proxy struct {
	ln  net.Listener
	met *metrics

	mu          sync.Mutex
	target      string
	plan        Plan
	rng         *rand.Rand
	crossings   int
	fired       int
	partitioned bool
	conns       map[net.Conn]struct{}
	closed      bool

	wg sync.WaitGroup
}

// New starts a proxy listening on listen (use "127.0.0.1:0" for an
// ephemeral port; Addr reports it), forwarding to target. reg may be
// nil.
func New(listen, target string, reg *telemetry.Registry) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		met:    newMetrics(reg),
		target: target,
		rng:    rand.New(rand.NewSource(1)),
		conns:  map[net.Conn]struct{}{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — the stable address the
// router should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget repoints the proxy at a new upstream (a restarted worker's
// fresh port). Existing connections to the old target are severed: to
// the client that is exactly a node crash.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	conns := p.drainConnsLocked()
	p.mu.Unlock()
	closeAll(conns)
}

// Target returns the current upstream address.
func (p *Proxy) Target() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// SetPlan installs (or, with a zero Plan, clears) the fault plan and
// re-seeds the probabilistic draw; crossing/fired accounting restarts.
func (p *Proxy) SetPlan(plan Plan, seed int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.plan = plan
	p.rng = rand.New(rand.NewSource(seed))
	p.crossings = 0
	p.fired = 0
}

// Fired reports how many connections the current plan has faulted.
func (p *Proxy) Fired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Partition flips the full-partition switch: while on, every accepted
// connection dies immediately and every existing connection is severed.
// The listener stays open — a partition is a reachability failure, not
// a process death, and heals without a new socket.
func (p *Proxy) Partition(on bool) {
	p.mu.Lock()
	was := p.partitioned
	p.partitioned = on
	var conns []net.Conn
	if on && !was {
		conns = p.drainConnsLocked()
	}
	p.mu.Unlock()
	if on && !was {
		p.met.fault("partition")
	}
	closeAll(conns)
}

// Partitioned reports the switch state.
func (p *Proxy) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

// Close stops the proxy and severs everything.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := p.drainConnsLocked()
	p.mu.Unlock()
	_ = p.ln.Close()
	closeAll(conns)
	p.wg.Wait()
}

// drainConnsLocked empties the active-connection set and returns it for
// closing outside the lock.
func (p *Proxy) drainConnsLocked() []net.Conn {
	out := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		out = append(out, c)
	}
	p.conns = map[net.Conn]struct{}{}
	return out
}

func closeAll(conns []net.Conn) {
	for _, c := range conns {
		if tc, ok := c.(*net.TCPConn); ok {
			// SetLinger(0) turns Close into an RST: the peer sees a hard
			// reset, not a graceful close — a severed link, not a goodbye.
			_ = tc.SetLinger(0)
		}
		_ = c.Close()
	}
}

// take consumes one connection's fault decision, mirroring
// faultinject's Nth/Prob/Times semantics.
func (p *Proxy) take() *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.plan.faulty() {
		return nil
	}
	p.crossings++
	switch {
	case p.plan.Nth > 0:
		if p.crossings != p.plan.Nth {
			return nil
		}
	case p.plan.Prob > 0:
		if p.plan.Times > 0 && p.fired >= p.plan.Times {
			return nil
		}
		if p.rng.Float64() >= p.plan.Prob {
			return nil
		}
	default:
		if p.plan.Times > 0 && p.fired >= p.plan.Times {
			return nil
		}
	}
	p.fired++
	plan := p.plan
	return &plan
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.met.conns.Inc()
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return
		}
		if p.partitioned {
			p.mu.Unlock()
			// Accept-then-reset: to the dialer the link is dead.
			closeAll([]net.Conn{conn})
			continue
		}
		target := p.target
		p.conns[conn] = struct{}{}
		p.mu.Unlock()

		plan := p.take()
		p.wg.Add(1)
		go p.serve(conn, target, plan)
	}
}

// forget removes a finished connection from the active set.
func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// serve pipes one client connection to the target, applying the
// connection's fault plan to the upstream→client direction (where the
// response body travels).
func (p *Proxy) serve(client net.Conn, target string, plan *Plan) {
	defer p.wg.Done()
	defer p.forget(client)
	defer client.Close()
	p.met.active.Add(1)
	defer p.met.active.Add(-1)

	upstream, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		// Target gone (worker between death and restart): reset the
		// client so it sees a dead node, not a hang.
		closeAll([]net.Conn{client})
		return
	}
	defer upstream.Close()

	if plan != nil && plan.Latency > 0 {
		p.met.fault("latency")
		time.Sleep(plan.Latency)
	}

	// client→upstream: always clean (requests are small; the interesting
	// failure surface is the response path).
	go func() {
		_, _ = io.Copy(upstream, client)
		// Half-close so the worker sees EOF on the request stream.
		if tc, ok := upstream.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()

	// upstream→client with the plan applied.
	var w io.Writer = client
	var budget int64 = -1 // bytes until the planned failure; -1 = none
	kind := ""
	if plan != nil {
		switch {
		case plan.DropAfter > 0:
			budget, kind = plan.DropAfter, "drop"
		case plan.TruncateAfter > 0:
			budget, kind = plan.TruncateAfter, "truncate"
		}
		if plan.BandwidthBPS > 0 {
			p.met.fault("bandwidth")
			w = &throttledWriter{w: client, bps: plan.BandwidthBPS}
		}
	}
	if budget < 0 {
		_, _ = io.Copy(w, upstream)
		return
	}
	_, _ = io.CopyN(w, upstream, budget)
	p.met.fault(kind)
	if kind == "drop" {
		// Hard reset mid-body: the client reads ECONNRESET.
		closeAll([]net.Conn{client})
		return
	}
	// Clean close mid-body: the client reads a truncated document then a
	// normal EOF — unexpected EOF at the JSON layer.
	_ = client.Close()
}

// throttledWriter caps a copy to bps bytes/second in coarse chunks —
// crude but deterministic enough to make a response take real time.
type throttledWriter struct {
	w   io.Writer
	bps int
}

func (t *throttledWriter) Write(b []byte) (int, error) {
	written := 0
	for len(b) > 0 {
		chunk := t.bps / 10 // ~100ms granularity
		if chunk < 1 {
			chunk = 1
		}
		if chunk > len(b) {
			chunk = len(b)
		}
		n, err := t.w.Write(b[:chunk])
		written += n
		if err != nil {
			return written, err
		}
		b = b[chunk:]
		if len(b) > 0 {
			time.Sleep(time.Duration(float64(chunk) / float64(t.bps) * float64(time.Second)))
		}
	}
	return written, nil
}
