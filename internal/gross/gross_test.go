package gross

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/dag"
	"pipesched/internal/ir"
	"pipesched/internal/machine"
	"pipesched/internal/nopins"
)

func mustGraph(t *testing.T, src string) *dag.Graph {
	t.Helper()
	b, err := ir.ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dag.Build(b)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyAndSingle(t *testing.T) {
	b := ir.NewBlock("empty")
	g, err := dag.Build(b)
	if err != nil {
		t.Fatal(err)
	}
	r := Schedule(g, machine.SimulationMachine(), nopins.AssignFixed)
	if len(r.Order) != 0 || r.TotalNOPs != 0 {
		t.Errorf("empty: %+v", r)
	}

	g2 := mustGraph(t, "one:\n  1: Load #a")
	r2 := Schedule(g2, machine.SimulationMachine(), nopins.AssignFixed)
	if len(r2.Order) != 1 || r2.TotalNOPs != 0 || r2.Ticks != 1 {
		t.Errorf("single: %+v", r2)
	}
}

func TestFigure3Greedy(t *testing.T) {
	g := mustGraph(t, `fig3:
  1: Const 15
  2: Store #b, @1
  3: Load #a
  4: Mul @1, @3
  5: Store #a, @4`)
	m := machine.SimulationMachine()
	r := Schedule(g, m, nopins.AssignFixed)
	if !g.IsLegalOrder(r.Order) {
		t.Fatalf("greedy order %v illegal", r.Order)
	}
	// The greedy scheduler should do no worse than naive program order
	// (4 NOPs) and no better than the optimum (2 NOPs).
	if r.TotalNOPs < 2 || r.TotalNOPs > 4 {
		t.Errorf("greedy NOPs = %d, want within [2,4]", r.TotalNOPs)
	}
}

func TestGreedyFillsLatencyWithIndependentWork(t *testing.T) {
	// A dependent chain plus independent loads: greedy must interleave
	// the loads into the chain's latency slots instead of stalling.
	g := mustGraph(t, `mix:
  1: Load #a
  2: Neg @1
  3: Store #r, @2
  4: Load #x
  5: Load #y
  6: Store #s, @4
  7: Store #t, @5`)
	m := machine.SimulationMachine()
	r := Schedule(g, m, nopins.AssignFixed)
	if r.TotalNOPs != 0 {
		t.Errorf("greedy left %d NOPs; independent work should fill all slots (order %v, eta %v)",
			r.TotalNOPs, r.Order, r.Eta)
	}
}

// TestGreedyConsistentWithEvaluatorProperty: for fixed assignment, the
// NOP counts the tick simulation produces must match what the Ω evaluator
// assigns to the same order — two independent implementations of the same
// timing model.
func TestGreedyConsistentWithEvaluatorProperty(t *testing.T) {
	m := machine.SimulationMachine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := dag.Build(randomBlock(rng, 3+rng.Intn(12)))
		if err != nil {
			return false
		}
		r := Schedule(g, m, nopins.AssignFixed)
		if !g.IsLegalOrder(r.Order) {
			return false
		}
		ev := nopins.NewEvaluator(g, m, nopins.AssignFixed)
		check, err := ev.EvaluateOrder(r.Order)
		if err != nil {
			return false
		}
		return check.TotalNOPs == r.TotalNOPs && check.Ticks == r.Ticks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// bruteForceOptimum enumerates every legal schedule for ground truth
// (kept local: internal/core imports this package for its greedy seed,
// so the test cannot import core back).
func bruteForceOptimum(g *dag.Graph, m *machine.Machine) int {
	e := nopins.NewEvaluator(g, m, nopins.AssignFixed)
	best := int(^uint(0) >> 1)
	var rec func(depth int)
	rec = func(depth int) {
		if depth == g.N {
			if e.TotalNOPs() < best {
				best = e.TotalNOPs()
			}
			return
		}
		for u := 0; u < g.N; u++ {
			if e.Scheduled(u) || !e.Ready(u) {
				continue
			}
			e.Push(u)
			rec(depth + 1)
			e.Pop()
		}
	}
	rec(0)
	return best
}

// TestGreedyNeverBeatsOptimalProperty: the true optimum is a lower bound
// on the greedy heuristic's NOP count.
func TestGreedyNeverBeatsOptimalProperty(t *testing.T) {
	m := machine.SimulationMachine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := dag.Build(randomBlock(rng, 3+rng.Intn(6)))
		if err != nil {
			return false
		}
		greedy := Schedule(g, m, nopins.AssignFixed)
		return greedy.TotalNOPs >= bruteForceOptimum(g, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGreedyAssignmentModeUsesBothLoaders(t *testing.T) {
	m := machine.ExampleMachine()
	// Back-to-back adds: with only pipe 3 (fixed), enqueue 3 forces gaps;
	// greedy assignment alternates pipes 3 and 4.
	g := mustGraph(t, `adds:
  1: Const 1
  2: Add @1, @1
  3: Add @1, @1
  4: Store #x, @2
  5: Store #y, @3`)
	fixed := Schedule(g, m, nopins.AssignFixed)
	greedy := Schedule(g, m, nopins.AssignGreedy)
	if greedy.TotalNOPs > fixed.TotalNOPs {
		t.Errorf("greedy assignment (%d NOPs) worse than fixed (%d)", greedy.TotalNOPs, fixed.TotalNOPs)
	}
}

func randomBlock(rng *rand.Rand, n int) *ir.Block {
	b := ir.NewBlock("rand")
	vars := []string{"a", "b", "c"}
	var ids []int
	for i := 0; i < n; i++ {
		switch k := rng.Intn(6); {
		case k == 0 || len(ids) == 0:
			ids = append(ids, b.Append(ir.Load, ir.Var(vars[rng.Intn(len(vars))]), ir.None()))
		case k == 1:
			ids = append(ids, b.Append(ir.Const, ir.Imm(int64(rng.Intn(50))), ir.None()))
		case k == 2:
			b.Append(ir.Store, ir.Var(vars[rng.Intn(len(vars))]), ir.Ref(ids[rng.Intn(len(ids))]))
		default:
			ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Div}
			ids = append(ids, b.Append(ops[rng.Intn(len(ops))],
				ir.Ref(ids[rng.Intn(len(ids))]), ir.Ref(ids[rng.Intn(len(ids))])))
		}
	}
	return b
}
