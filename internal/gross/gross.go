// Package gross implements a greedy postpass list scheduler in the style
// of Gross [Gro83] and Gibbons–Muchnick — the heuristic family the paper
// positions its optimal search against.
//
// The scheduler walks the clock tick by tick. At every tick it considers
// the instructions whose dependence predecessors have all issued and
// whose latency and enqueue constraints are satisfied *at this tick*, and
// greedily issues the one with the longest dependence path below it
// (critical path first; ties to more successors, then program order).
// When nothing can issue, the tick becomes a NOP. The result is fast and
// usually good, but — unlike internal/core — carries no optimality
// guarantee.
package gross

import (
	"pipesched/internal/dag"
	"pipesched/internal/machine"
	"pipesched/internal/nopins"
)

// Schedule greedily schedules g for m and returns the resulting order
// with its NOP counts (same Result shape as the optimal search uses, so
// the two are directly comparable). Pipeline assignment follows mode.
func Schedule(g *dag.Graph, m *machine.Machine, mode nopins.AssignMode) nopins.Result {
	n := g.N
	if n == 0 {
		return nopins.Result{Order: []int{}, Eta: []int{}, Pipes: []int{}}
	}

	issueTick := make([]int, n) // tick each node issued at (1-based)
	pipeOf := make([]int, n)    // pipeline each node was bound to
	scheduled := make([]bool, n)
	remaining := make([]int, n)
	for u := 0; u < n; u++ {
		remaining[u] = len(g.Preds[u])
	}
	lastEnqueue := map[int]int{} // pipeline -> tick of most recent enqueue

	// pipesFor mirrors the evaluator's assignment modes: fixed uses the
	// first allowed pipeline, greedy may use any.
	pipesFor := func(u int) []int {
		set := m.PipelinesFor(g.Block.Tuples[u].Op)
		if len(set) == 0 {
			return []int{machine.NoPipeline}
		}
		if mode == nopins.AssignFixed {
			return set[:1]
		}
		return set
	}

	// canIssue reports whether u may issue at tick on some allowed
	// pipeline, returning the chosen pipeline.
	canIssue := func(u, tick int) (int, bool) {
		for _, d := range g.Preds[u] {
			if !d.Kind.CarriesLatency() {
				continue
			}
			if tick-issueTick[d.Node] < m.Latency(pipeOf[d.Node]) {
				return 0, false
			}
		}
		for _, p := range pipesFor(u) {
			if p == machine.NoPipeline {
				return p, true
			}
			if last, ok := lastEnqueue[p]; !ok || tick-last >= m.EnqueueTime(p) {
				return p, true
			}
		}
		return 0, false
	}

	order := make([]int, 0, n)
	eta := make([]int, 0, n)
	pipes := make([]int, 0, n)
	tick := 0
	pendingNops := 0
	for len(order) < n {
		tick++
		bestNode, bestPipe := -1, 0
		for u := 0; u < n; u++ {
			if scheduled[u] || remaining[u] != 0 {
				continue
			}
			p, ok := canIssue(u, tick)
			if !ok {
				continue
			}
			if bestNode < 0 || better(g, u, bestNode) {
				bestNode, bestPipe = u, p
			}
		}
		if bestNode < 0 {
			pendingNops++ // nothing could issue: this tick is a NOP
			continue
		}
		scheduled[bestNode] = true
		issueTick[bestNode] = tick
		pipeOf[bestNode] = bestPipe
		if bestPipe != machine.NoPipeline {
			lastEnqueue[bestPipe] = tick
		}
		for _, d := range g.Succs[bestNode] {
			remaining[d.Node]--
		}
		order = append(order, bestNode)
		eta = append(eta, pendingNops)
		pipes = append(pipes, bestPipe)
		pendingNops = 0
	}

	total := 0
	for _, e := range eta {
		total += e
	}
	return nopins.Result{Order: order, Eta: eta, Pipes: pipes, TotalNOPs: total, Ticks: tick}
}

// better reports whether ready node u beats v under the greedy priority:
// greatest height, then most immediate successors, then program order.
func better(g *dag.Graph, u, v int) bool {
	if g.Height(u) != g.Height(v) {
		return g.Height(u) > g.Height(v)
	}
	if len(g.Succs[u]) != len(g.Succs[v]) {
		return len(g.Succs[u]) > len(g.Succs[v])
	}
	return u < v
}
