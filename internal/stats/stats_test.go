package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almostEq(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single-element stddev must be 0")
	}
	if !almostEq(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Errorf("StdDev = %v, want 2", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2, 75: 4}
	for p, want := range cases {
		if got := Percentile(xs, p); !almostEq(got, want) {
			t.Errorf("P%.0f = %v, want %v", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	if got := Percentile([]float64{1, 2}, 50); !almostEq(got, 1.5) {
		t.Errorf("interpolated P50 = %v, want 1.5", got)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	// Empty and all-NaN inputs are both "no samples".
	if got := Percentile(nil, 0); got != 0 {
		t.Errorf("P0 of empty = %v, want 0", got)
	}
	if got := Percentile([]float64{math.NaN(), math.NaN()}, 50); got != 0 {
		t.Errorf("P50 of all-NaN = %v, want 0", got)
	}
	// A single sample is every percentile.
	for _, p := range []float64{0, 37.5, 50, 100} {
		if got := Percentile([]float64{42}, p); !almostEq(got, 42) {
			t.Errorf("P%v of single sample = %v, want 42", p, got)
		}
	}
	// p clamps at the extremes, including out-of-range requests.
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, -10); !almostEq(got, 1) {
		t.Errorf("P(-10) = %v, want min", got)
	}
	if got := Percentile(xs, 0); !almostEq(got, 1) {
		t.Errorf("P0 = %v, want min", got)
	}
	if got := Percentile(xs, 100); !almostEq(got, 3) {
		t.Errorf("P100 = %v, want max", got)
	}
	if got := Percentile(xs, 250); !almostEq(got, 3) {
		t.Errorf("P250 = %v, want max", got)
	}
}

func TestPercentileNaNGuard(t *testing.T) {
	// NaN samples are dropped, not sorted into the ranking.
	xs := []float64{math.NaN(), 1, math.NaN(), 3, 2, math.NaN()}
	if got := Percentile(xs, 50); !almostEq(got, 2) {
		t.Errorf("P50 with NaN samples = %v, want 2", got)
	}
	if got := Percentile(xs, 100); !almostEq(got, 3) {
		t.Errorf("P100 with NaN samples = %v, want 3", got)
	}
	// A NaN percentile request cannot rank anything.
	if got := Percentile([]float64{1, 2, 3}, math.NaN()); got != 0 {
		t.Errorf("P(NaN) = %v, want 0", got)
	}
	// The result is never NaN for inputs with at least one real sample.
	if got := Percentile(xs, 50); math.IsNaN(got) {
		t.Error("percentile of guarded input is NaN")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Error("MinMax(nil) != 0,0")
	}
}

func TestGroupBy(t *testing.T) {
	groups := GroupBy([]int{3, 1, 3, 2, 1}, []float64{30, 10, 32, 20, 12})
	if len(groups) != 3 {
		t.Fatalf("got %d groups", len(groups))
	}
	if groups[0].Key != 1 || groups[1].Key != 2 || groups[2].Key != 3 {
		t.Errorf("groups not sorted: %v", groups)
	}
	if groups[0].Count != 2 || !almostEq(Mean(groups[0].Ys), 11) {
		t.Errorf("group 1 wrong: %+v", groups[0])
	}
}

func TestGroupByPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	GroupBy([]int{1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram lost samples: %d", total)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d = %d, want 2", i, c)
		}
	}
	if h.BinLabel(0) == "" {
		t.Error("empty bin label")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("constant-sample histogram lost data: %d", total)
	}
	empty := NewHistogram(nil, 3)
	for _, c := range empty.Counts {
		if c != 0 {
			t.Error("empty histogram has counts")
		}
	}
}

func TestHistogramPanicsOnZeroBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 0 bins")
		}
	}()
	NewHistogram([]float64{1}, 0)
}

func TestLinearFit(t *testing.T) {
	// y = 2x + 1 exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	slope, intercept := LinearFit(xs, ys)
	if !almostEq(slope, 2) || !almostEq(intercept, 1) {
		t.Errorf("fit = %v, %v, want 2, 1", slope, intercept)
	}
	if s, i := LinearFit([]float64{1}, []float64{2}); s != 0 || i != 0 {
		t.Error("underdetermined fit should be 0,0")
	}
	// Vertical data: identical x.
	if s, i := LinearFit([]float64{2, 2}, []float64{1, 3}); s != 0 || !almostEq(i, 2) {
		t.Errorf("degenerate fit = %v,%v", s, i)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(raw, p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			// Skip inputs whose running sum could overflow float64.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		min, max := MinMax(raw)
		m := Mean(raw)
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
