// Package stats provides the small statistics toolkit used by the
// experiment drivers: means, deviations, percentiles, per-group
// aggregation and histogram binning for the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) by linear
// interpolation over the sorted sample. NaN samples are dropped before
// ranking (sort.Float64s would otherwise scatter them and poison the
// interpolation); a NaN p or an input with no non-NaN samples returns 0,
// like the empty input.
func Percentile(xs []float64, p float64) float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 || math.IsNaN(p) {
		return 0
	}
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the extrema of xs; both zero for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Group aggregates y values by integer key (e.g. block size).
type Group struct {
	Key   int
	Ys    []float64
	Count int
}

// GroupBy buckets (key, y) pairs by key and returns groups in ascending
// key order.
func GroupBy(keys []int, ys []float64) []Group {
	if len(keys) != len(ys) {
		panic("stats: GroupBy length mismatch")
	}
	byKey := map[int]*Group{}
	for i, k := range keys {
		g, ok := byKey[k]
		if !ok {
			g = &Group{Key: k}
			byKey[k] = g
		}
		g.Ys = append(g.Ys, ys[i])
		g.Count++
	}
	out := make([]Group, 0, len(byKey))
	for _, g := range byKey {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Histogram bins xs into n equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Width    float64
	Counts   []int
}

// NewHistogram builds an n-bin histogram of xs. n must be positive.
func NewHistogram(xs []float64, n int) Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	h := Histogram{Counts: make([]int, n)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = MinMax(xs)
	if h.Max == h.Min {
		h.Max = h.Min + 1
	}
	h.Width = (h.Max - h.Min) / float64(n)
	for _, x := range xs {
		bin := int((x - h.Min) / h.Width)
		if bin >= n {
			bin = n - 1
		}
		if bin < 0 {
			bin = 0
		}
		h.Counts[bin]++
	}
	return h
}

// BinLabel renders the i-th bin's range like "[4.0,8.0)".
func (h Histogram) BinLabel(i int) string {
	lo := h.Min + float64(i)*h.Width
	return fmt.Sprintf("[%.1f,%.1f)", lo, lo+h.Width)
}

// LinearFit returns slope and intercept of the least-squares line through
// the points; both zero when fewer than two points are given.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0
	}
	mx, my := Mean(xs), Mean(ys)
	num, den := 0.0, 0.0
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0, my
	}
	slope = num / den
	return slope, my - slope*mx
}
