package experiments

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"

	"pipesched/internal/core"
	"pipesched/internal/dag"
	"pipesched/internal/exhaustive"
	"pipesched/internal/machine"
	"pipesched/internal/synth"
)

// Table1Sizes lists the representative block sizes of the paper's
// Table 1 (instructions per block).
var Table1Sizes = []int{8, 11, 13, 13, 14, 16, 16, 16, 20, 21, 22}

// Table1Row compares the three search strategies on one block. All three
// "calls" columns are in the paper's unit — one call of the O(n)
// full-schedule procedure Q. The pruned search works in per-instruction
// placements (Ω invocations), so its column is the placement count
// normalized by the block size (rounded up); the raw placement count is
// also kept.
type Table1Row struct {
	Tuples             int
	ExhaustiveCalls    *big.Int // n!: every permutation is a Q call
	LegalCalls         int64    // legal schedules only (topological orders)
	LegalTruncated     bool     // legal count hit the cap
	ProposedCalls      int64    // pruned search, in Q-call equivalents
	ProposedPlacements int64    // pruned search, raw Ω invocations
	ProposedOptimal    bool     // proposed search completed
	FinalNOPs          int
}

// Table1Config configures the representative-example comparison.
type Table1Config struct {
	Seed      int64
	Sizes     []int            // default Table1Sizes
	LegalCap  int64            // cap on the legal-schedule count (paper: 9,999,000)
	Lambda    int64            // curtail for the proposed search
	Machine   *machine.Machine // default simulation machine
	Variables int
	Constants int
}

func (c *Table1Config) defaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = Table1Sizes
	}
	if c.LegalCap == 0 {
		c.LegalCap = 9999000
	}
	if c.Lambda == 0 {
		c.Lambda = 10000000
	}
	if c.Machine == nil {
		c.Machine = machine.SimulationMachine()
	}
	if c.Variables <= 0 {
		c.Variables = 8
	}
	if c.Constants <= 0 {
		c.Constants = 6
	}
}

// RunTable1 builds one representative block per requested size and runs
// the three-way comparison. The exhaustive column is computed analytically
// (n!), the legal column by capped enumeration, the proposed column by
// the actual pruned search.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]Table1Row, 0, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		blk, err := synth.GenerateWithTuples(rng, size, synth.Params{
			Variables: cfg.Variables,
			Constants: cfg.Constants,
		}, 0)
		if err != nil {
			return nil, err
		}
		g, err := dag.Build(blk.IR)
		if err != nil {
			return nil, err
		}
		legal := exhaustive.CountLegal(g, cfg.LegalCap)
		sched, err := core.Find(g, cfg.Machine, core.Options{Lambda: cfg.Lambda})
		if err != nil {
			return nil, err
		}
		placements := sched.Stats.OmegaCalls
		qEquivalents := (placements + int64(size) - 1) / int64(size)
		if qEquivalents == 0 {
			qEquivalents = 1 // the seed evaluation itself
		}
		rows = append(rows, Table1Row{
			Tuples:             size,
			ExhaustiveCalls:    exhaustive.Factorial(size),
			LegalCalls:         legal,
			LegalTruncated:     legal >= cfg.LegalCap,
			ProposedCalls:      qEquivalents,
			ProposedPlacements: placements,
			ProposedOptimal:    sched.Optimal,
			FinalNOPs:          sched.TotalNOPs,
		})
	}
	return rows, nil
}

// FormatTable1 renders rows like the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: Search Space for Representative Examples\n")
	fmt.Fprintf(&sb, "%-14s %-22s %-22s %-22s\n",
		"Instructions", "Exhaustive Search", "Pruning Illegal", "Proposed Pruning")
	fmt.Fprintf(&sb, "%-14s %-22s %-22s %-22s\n", "In Block", "Calls (n!)", "Calls", "Calls (Q-equiv)")
	for _, r := range rows {
		legal := fmt.Sprintf("%d", r.LegalCalls)
		if r.LegalTruncated {
			legal = fmt.Sprintf(">%d", r.LegalCalls-1)
		}
		proposed := fmt.Sprintf("%d", r.ProposedCalls)
		if !r.ProposedOptimal {
			proposed += " (curtailed)"
		}
		fmt.Fprintf(&sb, "%-14d %-22s %-22s %-22s\n",
			r.Tuples, formatBig(r.ExhaustiveCalls), legal, proposed)
	}
	return sb.String()
}

// formatBig prints exactly for small factorials and in scientific
// notation (as the paper does, e.g. "2.1x10^13") for large ones.
func formatBig(v *big.Int) string {
	s := v.String()
	if len(s) <= 9 {
		return s
	}
	f := new(big.Float).SetInt(v)
	mant := new(big.Float)
	exp := f.MantExp(mant) // v = mant * 2^exp, mant in [0.5, 1)
	_ = exp
	// Decimal exponent = digits-1.
	digits := len(s)
	lead, _ := new(big.Float).Quo(f, pow10(digits-1)).Float64()
	return fmt.Sprintf("%.1fx10^%d", lead, digits-1)
}

func pow10(n int) *big.Float {
	x := big.NewFloat(1)
	ten := big.NewFloat(10)
	for i := 0; i < n; i++ {
		x.Mul(x, ten)
	}
	return x
}
