package experiments

import (
	"fmt"
	"strings"

	"pipesched/internal/core"
	"pipesched/internal/dag"
	"pipesched/internal/kernels"
	"pipesched/internal/machine"
	"pipesched/internal/opt"
	"pipesched/internal/tuplegen"
)

// ReassocRow compares one kernel scheduled with and without the
// associative-chain rebalancing extension.
type ReassocRow struct {
	Kernel       string
	PlainTicks   int // optimal ticks after the standard optimizer
	ReassocTicks int // optimal ticks after rebalancing
	PlainPath    int // critical path length (tuples) before
	ReassocPath  int // critical path length after
}

// RunReassocStudy schedules every kernel twice on m (default: the deep
// machine, where dependence height dominates) — once after the standard
// optimizer and once with reassociation folded in — quantifying how much
// ILP the rebalancing exposes that even an optimal scheduler cannot
// create by reordering alone.
func RunReassocStudy(m *machine.Machine, lambda int64) ([]ReassocRow, error) {
	if m == nil {
		m = machine.DeepMachine()
	}
	if lambda == 0 {
		lambda = 100000
	}
	var rows []ReassocRow
	for _, k := range kernels.All() {
		base, err := tuplegen.Compile(k.Source, k.Name)
		if err != nil {
			return nil, err
		}
		plain := opt.Optimize(base)
		reass := opt.OptimizeReassoc(base)

		gPlain, err := dag.Build(plain)
		if err != nil {
			return nil, err
		}
		gReass, err := dag.Build(reass)
		if err != nil {
			return nil, err
		}
		sPlain, err := core.Find(gPlain, m, core.Options{Lambda: lambda})
		if err != nil {
			return nil, err
		}
		sReass, err := core.Find(gReass, m, core.Options{Lambda: lambda})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ReassocRow{
			Kernel:       k.Name,
			PlainTicks:   sPlain.Ticks,
			ReassocTicks: sReass.Ticks,
			PlainPath:    gPlain.CriticalPathLen(),
			ReassocPath:  gReass.CriticalPathLen(),
		})
	}
	return rows, nil
}

// FormatReassoc renders the study as a table.
func FormatReassoc(rows []ReassocRow) string {
	var sb strings.Builder
	sb.WriteString("Reassociation study: optimal ticks with and without chain rebalancing\n")
	sb.WriteString("kernel      path-before  path-after  ticks-plain  ticks-reassoc  speedup\n")
	var tp, tr float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s  %11d  %10d  %11d  %13d  %6.2fx\n",
			r.Kernel, r.PlainPath, r.ReassocPath, r.PlainTicks, r.ReassocTicks,
			float64(r.PlainTicks)/float64(r.ReassocTicks))
		tp += float64(r.PlainTicks)
		tr += float64(r.ReassocTicks)
	}
	if tr > 0 {
		fmt.Fprintf(&sb, "suite total: %.0f -> %.0f ticks (%.2fx)\n", tp, tr, tp/tr)
	}
	return sb.String()
}
