package experiments

import (
	"fmt"
	"strings"

	"pipesched/internal/core"
	"pipesched/internal/listsched"
	"pipesched/internal/machine"
)

// AblationRow measures one search configuration over a shared block pool.
type AblationRow struct {
	Name       string
	MeanOmega  float64 // mean search placements per block
	MeanNOPs   float64
	PctOptimal float64
}

// ablationConfigs lists the studied configurations: the full pruning
// stack, each rule removed in turn, the extensions added, and the seed
// degraded. Every configuration is still exact when it completes (only
// search EFFORT differs), which the MeanNOPs column confirms.
func ablationConfigs() []struct {
	Name string
	Opts core.Options
} {
	return []struct {
		Name string
		Opts core.Options
	}{
		{"full (default)", core.Options{}},
		{"no [5c] equivalence", core.Options{DisableEquivalence: true}},
		{"no [5a] bounds check", core.Options{DisableBoundsCheck: true}},
		{"no lower bound", core.Options{DisableLowerBound: true}},
		{"no greedy seed", core.Options{DisableGreedySeed: true}},
		{"program-order seed", core.Options{SeedPriority: listsched.ProgramOrder}},
		{"+ strong equivalence", core.Options{StrongEquivalence: true}},
	}
}

// RunAblation schedules a shared pool of synthetic blocks under every
// configuration, quantifying what each pruning rule buys. Lambda caps
// each search.
func RunAblation(seed int64, blocks, statements int, m *machine.Machine, lambda int64) ([]AblationRow, error) {
	if m == nil {
		m = machine.SimulationMachine()
	}
	if lambda == 0 {
		lambda = 200000
	}
	pool, err := blockPool(seed, blocks, statements)
	if err != nil {
		return nil, err
	}
	configs := ablationConfigs()
	rows := make([]AblationRow, 0, len(configs))
	for _, cfg := range configs {
		opts := cfg.Opts
		opts.Lambda = lambda
		var omega, nops, optimal float64
		for _, g := range pool {
			sched, err := core.Find(g, m, opts)
			if err != nil {
				return nil, err
			}
			omega += float64(sched.Stats.OmegaCalls)
			nops += float64(sched.TotalNOPs)
			if sched.Optimal {
				optimal++
			}
		}
		n := float64(len(pool))
		rows = append(rows, AblationRow{
			Name:       cfg.Name,
			MeanOmega:  omega / n,
			MeanNOPs:   nops / n,
			PctOptimal: 100 * optimal / n,
		})
	}
	return rows, nil
}

// FormatAblation renders the study as a table, with effort relative to
// the full configuration.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: search effort per pruning rule (shared block pool)\n")
	sb.WriteString("configuration          mean-omega  rel-effort  mean-NOPs  pct-optimal\n")
	base := 1.0
	if len(rows) > 0 && rows[0].MeanOmega > 0 {
		base = rows[0].MeanOmega
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %10.1f  %9.2fx  %9.2f  %10.1f%%\n",
			r.Name, r.MeanOmega, r.MeanOmega/base, r.MeanNOPs, r.PctOptimal)
	}
	return sb.String()
}
