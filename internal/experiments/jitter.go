package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"pipesched/internal/core"
	"pipesched/internal/machine"
	"pipesched/internal/nopins"
	"pipesched/internal/sim"
)

// JitterRow compares the delay mechanisms when operation latencies are
// variable at run time (the CARP situation of the paper's section 2.2):
// NOP padding must encode the worst case while interlocked hardware
// releases each stall the moment the actual result arrives.
type JitterRow struct {
	MinFraction    float64 // actual latency drawn from [ceil(f·worst), worst]
	NOPTicks       float64 // mean ticks, optimal schedule, worst-case NOPs
	InterlockTicks float64 // mean ticks, optimal schedule, interlock w/ actual
	Speedup        float64 // NOPTicks / InterlockTicks
	NaiveNOPTicks  float64 // mean ticks, naive order, worst-case NOPs
	NaiveILTicks   float64 // mean ticks, naive order, interlock w/ actual
	NaiveSpeedup   float64 // NaiveNOPTicks / NaiveILTicks
}

// RunJitterStudy schedules a block pool optimally for the worst case,
// then simulates `trials` random draws of actual latencies per block at
// each variability level. Latency draws derive deterministically from
// the seed.
func RunJitterStudy(seed int64, blocks, statements, trials int,
	m *machine.Machine, fractions []float64) ([]JitterRow, error) {
	if m == nil {
		m = machine.CARPLike() // long variable memory is the motivating case
	}
	if len(fractions) == 0 {
		fractions = []float64{1.0, 0.75, 0.5, 0.25}
	}
	if trials <= 0 {
		trials = 5
	}
	pool, err := blockPool(seed, blocks, statements)
	if err != nil {
		return nil, err
	}
	type scheduled struct {
		in    sim.Input // optimal schedule
		naive sim.Input // naive program order with its minimal NOPs
	}
	var scheds []scheduled
	for _, g := range pool {
		s, err := core.Find(g, m, core.Options{Lambda: 100000})
		if err != nil {
			return nil, err
		}
		order := make([]int, g.N)
		for i := range order {
			order[i] = i
		}
		nv, err := nopins.NewEvaluator(g, m, nopins.AssignFixed).EvaluateOrder(order)
		if err != nil {
			return nil, err
		}
		scheds = append(scheds, scheduled{
			in: sim.Input{
				Graph: g, M: m, Order: s.Order, Eta: s.Eta, Pipes: s.Pipes,
			},
			naive: sim.Input{
				Graph: g, M: m, Order: nv.Order, Eta: nv.Eta, Pipes: nv.Pipes,
			},
		})
	}

	rows := make([]JitterRow, 0, len(fractions))
	for _, f := range fractions {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("experiments: jitter fraction %v outside (0,1]", f)
		}
		rng := rand.New(rand.NewSource(seed ^ int64(f*1000)))
		row := JitterRow{MinFraction: f}
		samples := 0
		draw := func(in sim.Input) []int {
			actual := make([]int, len(in.Order))
			for i := range actual {
				worst := m.Latency(in.Pipes[i])
				if worst == 0 {
					continue
				}
				lo := int(f * float64(worst))
				if lo < 1 {
					lo = 1
				}
				actual[i] = lo + rng.Intn(worst-lo+1)
			}
			return actual
		}
		for _, sc := range scheds {
			nop, err := sim.Run(sc.in, sim.NOPPadding)
			if err != nil {
				return nil, err
			}
			naiveNop, err := sim.Run(sc.naive, sim.NOPPadding)
			if err != nil {
				return nil, err
			}
			for trial := 0; trial < trials; trial++ {
				il, err := sim.RunActual(sc.in, sim.ImplicitInterlock, draw(sc.in))
				if err != nil {
					return nil, err
				}
				nil2, err := sim.RunActual(sc.naive, sim.ImplicitInterlock, draw(sc.naive))
				if err != nil {
					return nil, err
				}
				row.NOPTicks += float64(nop.TotalTicks)
				row.InterlockTicks += float64(il.TotalTicks)
				row.NaiveNOPTicks += float64(naiveNop.TotalTicks)
				row.NaiveILTicks += float64(nil2.TotalTicks)
				samples++
			}
		}
		row.NOPTicks /= float64(samples)
		row.InterlockTicks /= float64(samples)
		row.NaiveNOPTicks /= float64(samples)
		row.NaiveILTicks /= float64(samples)
		row.Speedup = row.NOPTicks / row.InterlockTicks
		row.NaiveSpeedup = row.NaiveNOPTicks / row.NaiveILTicks
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatJitter renders the study as a table.
func FormatJitter(rows []JitterRow) string {
	var sb strings.Builder
	sb.WriteString("Variable-latency study: worst-case NOP padding vs interlock (CARP scenario)\n")
	sb.WriteString("                      --- optimal schedule ---   ----- naive order -----\n")
	sb.WriteString("min-latency-fraction  nop-tk  il-tk  il-speedup  nop-tk  il-tk  il-speedup\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%19.2f  %6.1f  %5.1f  %9.3fx  %6.1f  %5.1f  %9.3fx\n",
			r.MinFraction, r.NOPTicks, r.InterlockTicks, r.Speedup,
			r.NaiveNOPTicks, r.NaiveILTicks, r.NaiveSpeedup)
	}
	return sb.String()
}
