package experiments

import (
	"fmt"
	"strings"

	"pipesched/internal/core"
	"pipesched/internal/gross"
	"pipesched/internal/machine"
	"pipesched/internal/nopins"
)

// GreedyGapRow quantifies, for one machine, how often and by how much
// the Gross-style greedy heuristic misses the optimum — the paper's
// motivating observation ("although his heuristic typically does not
// result in the minimum delay ... the algorithm executes quickly and
// generally yields good results", section 1).
type GreedyGapRow struct {
	Machine       string
	Blocks        int     // blocks with a completed (provable) optimum
	PctSuboptimal float64 // % of those where greedy > optimal
	MeanGreedy    float64 // mean greedy NOPs
	MeanOptimal   float64 // mean optimal NOPs
	MaxGap        int     // worst single-block excess NOPs
	MeanTickRatio float64 // mean greedy-ticks / optimal-ticks
}

// RunGreedyGap compares the greedy baseline against provable optima on a
// shared pool across several machines. Blocks whose optimal search
// curtails are excluded (no ground truth).
func RunGreedyGap(seed int64, blocks, statements int,
	machines []*machine.Machine, lambda int64) ([]GreedyGapRow, error) {
	if len(machines) == 0 {
		machines = []*machine.Machine{
			machine.SimulationMachine(),
			machine.DeepMachine(),
			machine.R3000Like(),
			machine.CARPLike(),
		}
	}
	if lambda == 0 {
		lambda = 500000
	}
	pool, err := blockPool(seed, blocks, statements)
	if err != nil {
		return nil, err
	}
	rows := make([]GreedyGapRow, 0, len(machines))
	for _, m := range machines {
		row := GreedyGapRow{Machine: m.Name}
		var tickRatio float64
		for _, g := range pool {
			sched, err := core.Find(g, m, core.Options{Lambda: lambda})
			if err != nil {
				return nil, err
			}
			if !sched.Optimal {
				continue // no proof, no comparison
			}
			greedy := gross.Schedule(g, m, nopins.AssignFixed)
			row.Blocks++
			row.MeanGreedy += float64(greedy.TotalNOPs)
			row.MeanOptimal += float64(sched.TotalNOPs)
			if greedy.TotalNOPs > sched.TotalNOPs {
				row.PctSuboptimal++
				if gap := greedy.TotalNOPs - sched.TotalNOPs; gap > row.MaxGap {
					row.MaxGap = gap
				}
			}
			tickRatio += float64(greedy.Ticks) / float64(sched.Ticks)
		}
		if row.Blocks == 0 {
			return nil, fmt.Errorf("experiments: no provable optima on %s", m.Name)
		}
		n := float64(row.Blocks)
		row.PctSuboptimal = 100 * row.PctSuboptimal / n
		row.MeanGreedy /= n
		row.MeanOptimal /= n
		row.MeanTickRatio = tickRatio / n
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatGreedyGap renders the comparison as a table.
func FormatGreedyGap(rows []GreedyGapRow) string {
	var sb strings.Builder
	sb.WriteString("Greedy heuristic vs provable optimum\n")
	sb.WriteString("machine             blocks  pct-suboptimal  greedy-NOPs  optimal-NOPs  max-gap  tick-ratio\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s  %6d  %13.1f%%  %11.2f  %12.2f  %7d  %9.3f\n",
			r.Machine, r.Blocks, r.PctSuboptimal, r.MeanGreedy, r.MeanOptimal,
			r.MaxGap, r.MeanTickRatio)
	}
	return sb.String()
}
