package experiments

import (
	"strings"
	"testing"

	"pipesched/internal/machine"
)

func TestLambdaSweepShapes(t *testing.T) {
	rows, err := RunLambdaSweep(7, 40, 8, nil, []int64{50, 1000, 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// More budget can only help (quality monotone non-increasing, proof
	// rate monotone non-decreasing) — this is the paper's convergence
	// claim made checkable.
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanNOPs > rows[i-1].MeanNOPs {
			t.Errorf("quality regressed with larger λ: %v -> %v",
				rows[i-1].MeanNOPs, rows[i].MeanNOPs)
		}
		if rows[i].PctOptimal < rows[i-1].PctOptimal {
			t.Errorf("proof rate dropped with larger λ: %v -> %v",
				rows[i-1].PctOptimal, rows[i].PctOptimal)
		}
	}
	out := FormatLambdaSweep(rows)
	if !strings.Contains(out, "lambda") || !strings.Contains(out, "mean-NOPs") {
		t.Errorf("sweep table malformed:\n%s", out)
	}
}

func TestLambdaSweepDefaults(t *testing.T) {
	rows, err := RunLambdaSweep(3, 5, 5, machine.SimulationMachine(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("default lambda list should give 6 rows, got %d", len(rows))
	}
}

func TestWindowSweepShapes(t *testing.T) {
	rows, err := RunWindowSweep(11, 10, 40, nil, []int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PctWindows < 0 || r.PctWindows > 100 {
			t.Errorf("window %d: pct out of range: %v", r.Window, r.PctWindows)
		}
		if r.MeanNOPs < 0 {
			t.Errorf("window %d: negative NOPs", r.Window)
		}
	}
	out := FormatWindowSweep(rows)
	if !strings.Contains(out, "window") {
		t.Errorf("sweep table malformed:\n%s", out)
	}
}

func TestSweepsDeterministic(t *testing.T) {
	a, err := RunLambdaSweep(5, 10, 6, machine.SimulationMachine(), []int64{100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLambdaSweep(5, 10, 6, machine.SimulationMachine(), []int64{100})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("lambda sweep nondeterministic: %+v vs %+v", a[0], b[0])
	}
}

func TestAblationStudy(t *testing.T) {
	rows, err := RunAblation(13, 40, 7, nil, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d configurations", len(rows))
	}
	if rows[0].Name != "full (default)" {
		t.Errorf("first row should be the baseline, got %q", rows[0].Name)
	}
	// Every configuration that completes is exact, so quality can only
	// differ through curtailment; at this λ on small blocks all complete
	// with identical NOPs.
	for _, r := range rows {
		if r.PctOptimal > 99.9 && r.MeanNOPs != rows[0].MeanNOPs {
			t.Errorf("%s: completed searches disagree on optimum: %v vs %v",
				r.Name, r.MeanNOPs, rows[0].MeanNOPs)
		}
	}
	// The degraded seed must cost more effort than the full stack.
	var progOrder *AblationRow
	for i := range rows {
		if rows[i].Name == "program-order seed" {
			progOrder = &rows[i]
		}
	}
	if progOrder == nil {
		t.Fatal("program-order row missing")
	}
	if progOrder.MeanOmega <= rows[0].MeanOmega {
		t.Errorf("program-order seed should cost more effort: %v vs %v",
			progOrder.MeanOmega, rows[0].MeanOmega)
	}
	out := FormatAblation(rows)
	if !strings.Contains(out, "rel-effort") || !strings.Contains(out, "full (default)") {
		t.Errorf("ablation table malformed:\n%s", out)
	}
}

func TestPostpassStudy(t *testing.T) {
	rows, err := RunPostpass(17, 30, 6, nil, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Register constraints can only restrict the schedule: postpass
		// NOPs are never below prepass NOPs.
		if r.PostpassNOPs < r.PrepassNOPs-1e-9 {
			t.Errorf("registers=%d: postpass (%.2f) beat prepass (%.2f)",
				r.Registers, r.PostpassNOPs, r.PrepassNOPs)
		}
		if r.MeanExtra < 0 {
			t.Errorf("registers=%d: negative extra NOPs", r.Registers)
		}
	}
	// (No cross-row comparison: each register count skips the blocks
	// whose pressure exceeds it, so the populations differ.)
	out := FormatPostpass(rows)
	if !strings.Contains(out, "MAXLIVE") || !strings.Contains(out, "postpass-NOPs") {
		t.Errorf("postpass table malformed:\n%s", out)
	}
}

func TestGreedyGapStudy(t *testing.T) {
	rows, err := RunGreedyGap(21, 40, 7, nil, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.MeanGreedy < r.MeanOptimal-1e-9 {
			t.Errorf("%s: greedy (%.2f) below the proven optimum (%.2f)",
				r.Machine, r.MeanGreedy, r.MeanOptimal)
		}
		if r.MeanTickRatio < 1-1e-9 {
			t.Errorf("%s: greedy tick ratio below 1: %v", r.Machine, r.MeanTickRatio)
		}
		if r.PctSuboptimal < 0 || r.PctSuboptimal > 100 {
			t.Errorf("%s: pct out of range", r.Machine)
		}
	}
	out := FormatGreedyGap(rows)
	if !strings.Contains(out, "pct-suboptimal") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestJitterStudy(t *testing.T) {
	rows, err := RunJitterStudy(25, 20, 6, 3, nil, []float64{1.0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// With no variability (fraction 1.0) the mechanisms tie; with real
	// variability the interlock pulls ahead.
	if rows[0].Speedup < 0.999 || rows[0].Speedup > 1.001 {
		t.Errorf("fraction 1.0 should tie: speedup %v", rows[0].Speedup)
	}
	if rows[1].Speedup <= 1.0 {
		t.Errorf("variable latency should favor the interlock: speedup %v", rows[1].Speedup)
	}
	if rows[1].InterlockTicks > rows[1].NOPTicks {
		t.Error("interlock slower than worst-case padding under jitter")
	}
	out := FormatJitter(rows)
	if !strings.Contains(out, "il-speedup") {
		t.Errorf("jitter table malformed:\n%s", out)
	}
}

func TestJitterStudyRejectsBadFraction(t *testing.T) {
	if _, err := RunJitterStudy(1, 2, 3, 1, nil, []float64{1.5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := RunJitterStudy(1, 2, 3, 1, nil, []float64{0}); err == nil {
		t.Error("fraction 0 accepted")
	}
}

func TestReassocStudy(t *testing.T) {
	rows, err := RunReassocStudy(machine.DeepMachine(), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 18 {
		t.Fatalf("got %d rows", len(rows))
	}
	improved := 0
	for _, r := range rows {
		if r.ReassocPath > r.PlainPath {
			t.Errorf("%s: rebalancing raised the critical path %d -> %d",
				r.Kernel, r.PlainPath, r.ReassocPath)
		}
		if r.ReassocTicks < r.PlainTicks {
			improved++
		}
	}
	if improved == 0 {
		t.Error("rebalancing improved no kernel on the deep machine")
	}
	out := FormatReassoc(rows)
	if !strings.Contains(out, "suite total") {
		t.Errorf("table malformed:\n%s", out)
	}
}
