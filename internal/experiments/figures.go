package experiments

import (
	"fmt"
	"strings"

	"pipesched/internal/plot"
	"pipesched/internal/stats"
)

// Figure1 reproduces "Schedules Searched Vs. Block Size" for runs whose
// search completed: a scatter of Ω calls (log scale) against block size.
func (c *Campaign) Figure1() string {
	completed, _ := c.Split()
	pts := make([]plot.Point, 0, len(completed))
	for _, r := range completed {
		pts = append(pts, plot.Point{X: float64(r.Tuples), Y: float64(r.OmegaCalls) + 1})
	}
	return plot.Chart(plot.Config{
		Title:  fmt.Sprintf("Figure 1: Schedules Searched vs Block Size (%d complete runs)", len(completed)),
		XLabel: "instructions per block",
		YLabel: "Ω calls",
		LogY:   true,
	}, plot.Series{Name: "completed run", Mark: '*', Points: pts})
}

// Figure4 reproduces "Initial and Final NOPs Vs. Block Size": per-size
// mean initial NOPs (growing linearly) against mean final NOPs (staying
// nearly flat).
func (c *Campaign) Figure4() string {
	keys := make([]int, len(c.Records))
	initial := make([]float64, len(c.Records))
	list := make([]float64, len(c.Records))
	final := make([]float64, len(c.Records))
	for i, r := range c.Records {
		keys[i] = r.Tuples
		initial[i] = float64(r.InitialNOPs)
		list[i] = float64(r.ListNOPs)
		final[i] = float64(r.FinalNOPs)
	}
	group := func(ys []float64) []plot.Point {
		var pts []plot.Point
		for _, g := range stats.GroupBy(keys, ys) {
			pts = append(pts, plot.Point{X: float64(g.Key), Y: stats.Mean(g.Ys)})
		}
		return pts
	}
	initPts, listPts, finPts := group(initial), group(list), group(final)
	chart := plot.Chart(plot.Config{
		Title:  "Figure 4: Initial and Final NOPs vs Block Size",
		XLabel: "instructions per block",
		YLabel: "mean NOPs",
	},
		plot.Series{Name: "initial NOPs (program order)", Mark: 'i', Points: initPts},
		plot.Series{Name: "seed NOPs (list/greedy)", Mark: 'l', Points: listPts},
		plot.Series{Name: "final NOPs (after search)", Mark: 'f', Points: finPts},
	)
	islope, _ := stats.LinearFit(flatten(initPts))
	fslope, _ := stats.LinearFit(flatten(finPts))
	return chart + fmt.Sprintf("slopes: initial %.3f NOPs/instr, final %.3f NOPs/instr\n", islope, fslope)
}

func flatten(pts []plot.Point) (xs, ys []float64) {
	for _, p := range pts {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	return xs, ys
}

// Figure5 reproduces "Distribution of Sample Block Sizes".
func (c *Campaign) Figure5() string {
	sizes := make([]float64, len(c.Records))
	for i, r := range c.Records {
		sizes[i] = float64(r.Tuples)
	}
	h := stats.NewHistogram(sizes, 12)
	out := plot.HistogramChart("Figure 5: Distribution of Sample Block Sizes", h, 50)
	return out + fmt.Sprintf("mean block size: %.2f instructions\n", stats.Mean(sizes))
}

// Figure6 reproduces "Runtime Vs. Block Size": mean wall-clock search
// time per block size.
func (c *Campaign) Figure6() string {
	keys := make([]int, len(c.Records))
	ms := make([]float64, len(c.Records))
	for i, r := range c.Records {
		keys[i] = r.Tuples
		ms[i] = float64(r.Elapsed.Nanoseconds()) / 1e6
	}
	var pts []plot.Point
	for _, g := range stats.GroupBy(keys, ms) {
		pts = append(pts, plot.Point{X: float64(g.Key), Y: stats.Mean(g.Ys)})
	}
	return plot.Chart(plot.Config{
		Title:  "Figure 6: Runtime vs Block Size",
		XLabel: "instructions per block",
		YLabel: "mean search ms",
	}, plot.Series{Name: "mean runtime", Mark: '*', Points: pts})
}

// Figure7 reproduces "Percentage of Runs Finding Optimal Schedules":
// the fraction of runs per block size that completed (were not curtailed
// by λ).
func (c *Campaign) Figure7() string {
	keys := make([]int, len(c.Records))
	ok := make([]float64, len(c.Records))
	for i, r := range c.Records {
		keys[i] = r.Tuples
		if r.Completed {
			ok[i] = 100
		}
	}
	var pts []plot.Point
	for _, g := range stats.GroupBy(keys, ok) {
		pts = append(pts, plot.Point{X: float64(g.Key), Y: stats.Mean(g.Ys)})
	}
	return plot.Chart(plot.Config{
		Title:  "Figure 7: Percent of Runs Provably Optimal vs Block Size",
		XLabel: "instructions per block",
		YLabel: "% optimal",
	}, plot.Series{Name: "% completed", Mark: '*', Points: pts})
}

// FigureData exposes the per-size aggregates backing Figures 4, 6 and 7
// for tests and machine consumption.
type FigureData struct {
	Size        int
	Runs        int
	MeanInitial float64 // naive program-order NOPs
	MeanList    float64 // search-seed NOPs (better of list and greedy)
	MeanFinal   float64
	MeanOmega   float64
	MeanMillis  float64
	PctOptimal  float64
}

// PerSize aggregates the campaign per block size.
func (c *Campaign) PerSize() []FigureData {
	bySize := map[int]*FigureData{}
	counts := map[int]int{}
	for _, r := range c.Records {
		d, ok := bySize[r.Tuples]
		if !ok {
			d = &FigureData{Size: r.Tuples}
			bySize[r.Tuples] = d
		}
		counts[r.Tuples]++
		d.MeanInitial += float64(r.InitialNOPs)
		d.MeanList += float64(r.ListNOPs)
		d.MeanFinal += float64(r.FinalNOPs)
		d.MeanOmega += float64(r.OmegaCalls)
		d.MeanMillis += float64(r.Elapsed.Nanoseconds()) / 1e6
		if r.Completed {
			d.PctOptimal += 100
		}
	}
	out := make([]FigureData, 0, len(bySize))
	for size, d := range bySize {
		n := float64(counts[size])
		d.Runs = counts[size]
		d.MeanInitial /= n
		d.MeanList /= n
		d.MeanFinal /= n
		d.MeanOmega /= n
		d.MeanMillis /= n
		d.PctOptimal /= n
		out = append(out, *d)
	}
	sortFigureData(out)
	return out
}

func sortFigureData(ds []FigureData) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Size < ds[j-1].Size; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// PerSizeTable renders PerSize as a readable table.
func (c *Campaign) PerSizeTable() string {
	var sb strings.Builder
	sb.WriteString("size  runs  init-NOPs  list-NOPs  final-NOPs  Ω-calls     ms      %optimal\n")
	for _, d := range c.PerSize() {
		fmt.Fprintf(&sb, "%4d  %4d  %9.2f  %9.2f  %10.2f  %8.1f  %8.3f  %7.2f\n",
			d.Size, d.Runs, d.MeanInitial, d.MeanList, d.MeanFinal, d.MeanOmega, d.MeanMillis, d.PctOptimal)
	}
	return sb.String()
}
