package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"pipesched/internal/core"
	"pipesched/internal/dag"
	"pipesched/internal/machine"
	"pipesched/internal/splitter"
	"pipesched/internal/synth"
)

// LambdaSweepRow records schedule quality and proof rate at one curtail
// point.
type LambdaSweepRow struct {
	Lambda     int64
	MeanNOPs   float64
	PctOptimal float64
	MeanOmega  float64
}

// RunLambdaSweep schedules one shared pool of blocks at several curtail
// points, quantifying the paper's observation that the search "quickly
// converges to a near-optimal solution" long before the optimality proof
// completes.
func RunLambdaSweep(seed int64, blocks, statements int, m *machine.Machine,
	lambdas []int64) ([]LambdaSweepRow, error) {
	if m == nil {
		m = machine.DeepMachine() // deep pipelines stress the search most
	}
	if len(lambdas) == 0 {
		lambdas = []int64{50, 200, 1000, 5000, 50000, 500000}
	}
	pool, err := blockPool(seed, blocks, statements)
	if err != nil {
		return nil, err
	}
	rows := make([]LambdaSweepRow, 0, len(lambdas))
	for _, lambda := range lambdas {
		var nops, optimal, omega float64
		for _, g := range pool {
			sched, err := core.Find(g, m, core.Options{Lambda: lambda})
			if err != nil {
				return nil, err
			}
			nops += float64(sched.TotalNOPs)
			omega += float64(sched.Stats.OmegaCalls)
			if sched.Optimal {
				optimal++
			}
		}
		n := float64(len(pool))
		rows = append(rows, LambdaSweepRow{
			Lambda:     lambda,
			MeanNOPs:   nops / n,
			PctOptimal: 100 * optimal / n,
			MeanOmega:  omega / n,
		})
	}
	return rows, nil
}

// FormatLambdaSweep renders the sweep as a table.
func FormatLambdaSweep(rows []LambdaSweepRow) string {
	var sb strings.Builder
	sb.WriteString("Lambda sweep: schedule quality vs curtail point\n")
	sb.WriteString("lambda      mean-NOPs  pct-optimal  mean-omega\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10d  %9.2f  %10.1f%%  %10.1f\n",
			r.Lambda, r.MeanNOPs, r.PctOptimal, r.MeanOmega)
	}
	return sb.String()
}

// WindowSweepRow compares split scheduling at one window size against
// the other strategies on the same large blocks.
type WindowSweepRow struct {
	Window     int
	MeanNOPs   float64
	MeanOmega  float64 // mean total search placements per block
	PctWindows float64 // percentage of windows proved optimal
}

// RunWindowSweep evaluates the section 5.3 splitting strategy on blocks
// too large for reliable whole-block search: quality (NOPs) and search
// cost as the window size varies.
func RunWindowSweep(seed int64, blocks, statements int, m *machine.Machine,
	windows []int) ([]WindowSweepRow, error) {
	if m == nil {
		m = machine.SimulationMachine()
	}
	if len(windows) == 0 {
		windows = []int{5, 10, 20, 40}
	}
	pool, err := blockPool(seed, blocks, statements)
	if err != nil {
		return nil, err
	}
	rows := make([]WindowSweepRow, 0, len(windows))
	for _, w := range windows {
		var nops, omega, optWins, wins float64
		for _, g := range pool {
			r, err := splitter.Schedule(g, m, splitter.Config{Window: w, Lambda: 20000})
			if err != nil {
				return nil, err
			}
			nops += float64(r.TotalNOPs)
			omega += float64(r.OmegaCalls)
			optWins += float64(r.OptimalWindows)
			wins += float64(r.Windows)
		}
		n := float64(len(pool))
		row := WindowSweepRow{
			Window:    w,
			MeanNOPs:  nops / n,
			MeanOmega: omega / n,
		}
		if wins > 0 {
			row.PctWindows = 100 * optWins / wins
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatWindowSweep renders the sweep as a table.
func FormatWindowSweep(rows []WindowSweepRow) string {
	var sb strings.Builder
	sb.WriteString("Window sweep: split scheduling of large blocks (section 5.3)\n")
	sb.WriteString("window      mean-NOPs  mean-omega  pct-windows-optimal\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10d  %9.2f  %10.1f  %18.1f%%\n",
			r.Window, r.MeanNOPs, r.MeanOmega, r.PctWindows)
	}
	return sb.String()
}

// blockPool builds a deterministic pool of synthetic block graphs.
func blockPool(seed int64, blocks, statements int) ([]*dag.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	var pool []*dag.Graph
	for len(pool) < blocks {
		b, err := synth.Generate(rng, synth.Params{
			Statements: statements, Variables: 8, Constants: 6,
		})
		if err != nil {
			return nil, err
		}
		g, err := dag.Build(b.IR)
		if err != nil {
			return nil, err
		}
		pool = append(pool, g)
	}
	return pool, nil
}
