package experiments

import (
	"strings"
	"testing"

	"pipesched/internal/machine"
)

// smallCampaign runs a reduced but statistically meaningful campaign
// shared by several tests.
func smallCampaign(t *testing.T) *Campaign {
	t.Helper()
	c, err := RunCampaign(CampaignConfig{Runs: 300, Seed: 1, Lambda: 20000})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var cached *Campaign

func campaign(t *testing.T) *Campaign {
	t.Helper()
	if cached == nil {
		cached = smallCampaign(t)
	}
	return cached
}

func TestCampaignBasics(t *testing.T) {
	c := campaign(t)
	if len(c.Records) != 300 {
		t.Fatalf("got %d records", len(c.Records))
	}
	completed, truncated := c.Split()
	if len(completed)+len(truncated) != 300 {
		t.Error("split loses records")
	}
	// The paper's headline: the overwhelming majority of blocks complete.
	if pct := float64(len(completed)) / 3.0; pct < 90 {
		t.Errorf("only %.1f%% of searches completed; paper reports ~98.8%%", pct)
	}
	for _, r := range c.Records {
		if r.Tuples <= 0 {
			t.Error("record with no tuples")
		}
		if r.FinalNOPs > r.ListNOPs {
			t.Errorf("search worsened the seed: %d -> %d NOPs", r.ListNOPs, r.FinalNOPs)
		}
		if r.FinalNOPs > r.InitialNOPs {
			t.Errorf("final NOPs exceed naive program order: %d -> %d", r.InitialNOPs, r.FinalNOPs)
		}
	}
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	one, err := RunCampaign(CampaignConfig{Runs: 60, Seed: 5, Lambda: 5000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunCampaign(CampaignConfig{Runs: 60, Seed: 5, Lambda: 5000, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range one.Records {
		a, b := one.Records[i], many.Records[i]
		// Elapsed differs; everything deterministic must match.
		if a.Tuples != b.Tuples || a.InitialNOPs != b.InitialNOPs || a.ListNOPs != b.ListNOPs ||
			a.FinalNOPs != b.FinalNOPs || a.OmegaCalls != b.OmegaCalls || a.Completed != b.Completed {
			t.Fatalf("record %d differs across worker counts: %+v vs %+v", i, a, b)
		}
	}
}

func TestFinalNOPsNearlyConstantWhileInitialGrows(t *testing.T) {
	// The paper's Figure 4 claim: initial NOPs grow with block size,
	// final NOPs stay nearly constant. Compare small vs large blocks.
	c := campaign(t)
	var smallInit, smallFin, largeInit, largeFin, nSmall, nLarge float64
	for _, r := range c.Records {
		if r.Tuples <= 12 {
			smallInit += float64(r.InitialNOPs)
			smallFin += float64(r.FinalNOPs)
			nSmall++
		} else if r.Tuples >= 25 {
			largeInit += float64(r.InitialNOPs)
			largeFin += float64(r.FinalNOPs)
			nLarge++
		}
	}
	if nSmall == 0 || nLarge == 0 {
		t.Skip("size distribution missing a bucket in this reduced run")
	}
	initGrowth := largeInit/nLarge - smallInit/nSmall
	finGrowth := largeFin/nLarge - smallFin/nSmall
	if initGrowth <= 0 {
		t.Errorf("initial NOPs did not grow with size (Δ=%.2f)", initGrowth)
	}
	if finGrowth >= initGrowth {
		t.Errorf("final NOPs grew as fast as initial (Δfinal=%.2f, Δinitial=%.2f)", finGrowth, initGrowth)
	}
}

func TestTable7Rendering(t *testing.T) {
	out := campaign(t).Table7()
	for _, want := range []string{
		"Table 7", "Number of Runs", "Percentage of Runs",
		"Avg. Instructions/Block", "Avg. Initial NOPs", "Avg. Seed NOPs", "Avg. Final NOPs",
		"Avg. Ω Calls", "Avg. Search Time",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 7 missing %q:\n%s", want, out)
		}
	}
}

func TestFiguresRender(t *testing.T) {
	c := campaign(t)
	figs := map[string]string{
		"Figure 1": c.Figure1(),
		"Figure 4": c.Figure4(),
		"Figure 5": c.Figure5(),
		"Figure 6": c.Figure6(),
		"Figure 7": c.Figure7(),
	}
	for name, out := range figs {
		if !strings.Contains(out, name) {
			t.Errorf("%s output missing its caption:\n%s", name, out)
		}
		if len(out) < 100 {
			t.Errorf("%s suspiciously short: %q", name, out)
		}
	}
}

func TestCSVExport(t *testing.T) {
	c := campaign(t)
	csv := c.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(c.Records)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(c.Records)+1)
	}
	if !strings.HasPrefix(lines[0], "tuples,") {
		t.Errorf("CSV header wrong: %q", lines[0])
	}
}

func TestPerSizeAggregates(t *testing.T) {
	c := campaign(t)
	data := c.PerSize()
	if len(data) == 0 {
		t.Fatal("no per-size data")
	}
	totalRuns := 0
	lastSize := -1
	for _, d := range data {
		if d.Size <= lastSize {
			t.Error("per-size data not sorted ascending")
		}
		lastSize = d.Size
		totalRuns += d.Runs
		if d.PctOptimal < 0 || d.PctOptimal > 100 {
			t.Errorf("size %d: %%optimal out of range: %v", d.Size, d.PctOptimal)
		}
	}
	if totalRuns != len(c.Records) {
		t.Errorf("per-size runs %d != records %d", totalRuns, len(c.Records))
	}
	if !strings.Contains(c.PerSizeTable(), "size") {
		t.Error("PerSizeTable missing header")
	}
}

func TestTable1SmallSizes(t *testing.T) {
	rows, err := RunTable1(Table1Config{
		Seed:     2,
		Sizes:    []int{8, 10, 12},
		LegalCap: 200000,
		Lambda:   1000000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The ordering the paper's Table 1 demonstrates: proposed <<
		// legal << exhaustive (all in Q-call units).
		if !r.LegalTruncated && r.ProposedCalls > r.LegalCalls {
			t.Errorf("size %d: proposed %d Q-equiv calls vs legal %d — pruning not effective",
				r.Tuples, r.ProposedCalls, r.LegalCalls)
		}
		if r.ExhaustiveCalls.Int64() > 0 && r.LegalCalls > r.ExhaustiveCalls.Int64() {
			t.Errorf("size %d: legal exceeds n!", r.Tuples)
		}
		if !r.ProposedOptimal {
			t.Errorf("size %d: proposed search curtailed at λ=10^6", r.Tuples)
		}
	}
	out := FormatTable1(rows)
	for _, want := range []string{"Table 1", "Exhaustive", "Pruning Illegal", "Proposed"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatBigScientific(t *testing.T) {
	rows, err := RunTable1(Table1Config{Seed: 3, Sizes: []int{16}, LegalCap: 10000, Lambda: 100000})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable1(rows)
	// 16! = 20922789888000 renders in scientific notation.
	if !strings.Contains(out, "x10^13") {
		t.Errorf("16! not rendered scientifically:\n%s", out)
	}
}

func TestCampaignWithExampleMachine(t *testing.T) {
	c, err := RunCampaign(CampaignConfig{
		Runs: 40, Seed: 9, Lambda: 5000,
		Machine: machine.ExampleMachine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) != 40 {
		t.Fatalf("got %d records", len(c.Records))
	}
}

func TestCampaignOptimizedBlocks(t *testing.T) {
	c, err := RunCampaign(CampaignConfig{Runs: 40, Seed: 9, Lambda: 5000, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) != 40 {
		t.Fatalf("got %d records", len(c.Records))
	}
}

func TestDetailTable(t *testing.T) {
	out := campaign(t).DetailTable()
	for _, want := range []string{"p50=", "p90=", "p99=", "Ω calls", "NOPs removed"} {
		if !strings.Contains(out, want) {
			t.Errorf("detail table missing %q:\n%s", want, out)
		}
	}
}
