package experiments

import (
	"fmt"
	"strings"

	"pipesched/internal/core"
	"pipesched/internal/dag"
	"pipesched/internal/machine"
	"pipesched/internal/regalloc"
)

// PostpassRow compares prepass scheduling (the paper's design: schedule
// the unallocated tuple form, allocate afterwards) against postpass
// scheduling (allocate registers on program order first, then schedule
// under the resulting register-reuse constraints) on one register count.
type PostpassRow struct {
	Registers    int     // architectural registers forced on the postpass allocator
	PrepassNOPs  float64 // mean optimal NOPs without register constraints
	PostpassNOPs float64 // mean optimal NOPs under register-reuse edges
	PctWorse     float64 // % of blocks where postpass is strictly worse
	MeanExtra    float64 // mean extra NOPs paid by postpass
}

// RunPostpass quantifies the paper's claim 1 (sections 1 and 3.4):
// "the register assignment can impose unnecessary restrictions on the
// schedule, resulting in unnecessary execution delays." Each block is
// scheduled twice — once on the clean dependence DAG and once on the
// DAG augmented with the anti/output edges a tight register allocation
// of the ORIGINAL program order induces. Fewer architectural registers
// mean more reuse and more artificial edges.
func RunPostpass(seed int64, blocks, statements int, m *machine.Machine,
	registerCounts []int) ([]PostpassRow, error) {
	if m == nil {
		m = machine.SimulationMachine()
	}
	if len(registerCounts) == 0 {
		registerCounts = []int{0, 16, 8, 6, 4}
	}
	pool, err := blockPool(seed, blocks, statements)
	if err != nil {
		return nil, err
	}
	rows := make([]PostpassRow, 0, len(registerCounts))
	for _, regs := range registerCounts {
		row := PostpassRow{Registers: regs}
		usable := 0
		for _, g := range pool {
			pre, err := core.Find(g, m, core.Options{Lambda: 200000})
			if err != nil {
				return nil, err
			}
			// Allocate on the original program order. With regs == 0 the
			// allocator still reuses registers aggressively (MAXLIVE),
			// which is exactly the reuse a real postpass scheduler faces.
			limit := regs
			if limit > 0 && regalloc.Pressure(g.Block) > limit {
				continue // block needs more registers; skip at this count
			}
			asg, err := regalloc.Allocate(g.Block, limit)
			if err != nil {
				return nil, err
			}
			constrained, err := dag.BuildWithRegisterConstraints(g.Block, asg.RegOf)
			if err != nil {
				return nil, err
			}
			post, err := core.Find(constrained, m, core.Options{Lambda: 200000})
			if err != nil {
				return nil, err
			}
			usable++
			row.PrepassNOPs += float64(pre.TotalNOPs)
			row.PostpassNOPs += float64(post.TotalNOPs)
			if post.TotalNOPs > pre.TotalNOPs {
				row.PctWorse++
			}
			row.MeanExtra += float64(post.TotalNOPs - pre.TotalNOPs)
		}
		if usable == 0 {
			return nil, fmt.Errorf("experiments: no blocks usable at %d registers", regs)
		}
		n := float64(usable)
		row.PrepassNOPs /= n
		row.PostpassNOPs /= n
		row.PctWorse = 100 * row.PctWorse / n
		row.MeanExtra /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPostpass renders the comparison as a table.
func FormatPostpass(rows []PostpassRow) string {
	var sb strings.Builder
	sb.WriteString("Prepass vs postpass scheduling (register-reuse constraints)\n")
	sb.WriteString("registers   prepass-NOPs  postpass-NOPs  extra-NOPs  pct-blocks-worse\n")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Registers)
		if r.Registers == 0 {
			label = "MAXLIVE"
		}
		fmt.Fprintf(&sb, "%-10s  %12.2f  %13.2f  %10.2f  %15.1f%%\n",
			label, r.PrepassNOPs, r.PostpassNOPs, r.MeanExtra, r.PctWorse)
	}
	return sb.String()
}
