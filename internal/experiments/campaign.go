// Package experiments reproduces the paper's evaluation: the 16,000-block
// scheduling campaign behind Table 7 and Figures 1 and 4-7, and the
// representative search-space comparison of Table 1. Every experiment is
// deterministic given its seed; campaigns fan out across goroutines with
// per-run derived seeds, so the parallel results are identical to the
// sequential ones.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"pipesched/internal/core"
	"pipesched/internal/dag"
	"pipesched/internal/listsched"
	"pipesched/internal/machine"
	"pipesched/internal/nopins"
	"pipesched/internal/stats"
	"pipesched/internal/synth"
)

// CampaignConfig configures a scheduling campaign.
type CampaignConfig struct {
	Runs      int              // number of blocks (paper: 16,000)
	Seed      int64            // master seed; run i uses Seed+i
	Lambda    int64            // curtail point λ (paper: large vs typical search)
	Machine   *machine.Machine // target (default: paper simulation machine)
	Variables int              // variable pool per block (default 8)
	Constants int              // constant pool per block (default 6)
	Optimize  bool             // run traditional optimizations before scheduling
	Workers   int              // goroutines (default GOMAXPROCS)
}

func (c *CampaignConfig) defaults() {
	if c.Runs <= 0 {
		c.Runs = 16000
	}
	if c.Lambda == 0 {
		c.Lambda = 100000
	}
	if c.Machine == nil {
		c.Machine = machine.SimulationMachine()
	}
	if c.Variables <= 0 {
		c.Variables = 8
	}
	if c.Constants <= 0 {
		c.Constants = 6
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Record is the outcome of scheduling one synthetic block.
type Record struct {
	Tuples      int
	InitialNOPs int   // NOPs of the naive program order (the paper's "initial")
	ListNOPs    int   // NOPs of the search seed (better of list schedule and greedy)
	FinalNOPs   int   // NOPs of the best schedule found
	OmegaCalls  int64 // search placements (Ω invocations)
	Completed   bool  // search ran to completion (provably optimal)
	Elapsed     time.Duration
}

// Campaign holds a full run's records.
type Campaign struct {
	Config  CampaignConfig
	Records []Record
}

// RunCampaign generates and schedules cfg.Runs synthetic blocks.
func RunCampaign(cfg CampaignConfig) (*Campaign, error) {
	cfg.defaults()
	records := make([]Record, cfg.Runs)
	errs := make([]error, cfg.Runs)

	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				records[i], errs[i] = runOne(cfg, i)
			}
		}()
	}
	for i := 0; i < cfg.Runs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Campaign{Config: cfg, Records: records}, nil
}

// runOne generates and schedules the i-th block. Each run derives its own
// rand.Rand from the master seed, making results independent of worker
// interleaving.
func runOne(cfg CampaignConfig, i int) (Record, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
	stmts := synth.SizeDistribution(rng, 1)[0]
	blk, err := synth.Generate(rng, synth.Params{
		Statements: stmts,
		Variables:  cfg.Variables,
		Constants:  cfg.Constants,
		Optimize:   cfg.Optimize,
	})
	if err != nil {
		return Record{}, fmt.Errorf("experiments: run %d: %w", i, err)
	}
	g, err := dag.Build(blk.IR)
	if err != nil {
		return Record{}, fmt.Errorf("experiments: run %d: %w", i, err)
	}
	// The paper's "initial NOPs" are those of the code as generated
	// (naive program order), before any scheduling.
	programOrder := make([]int, g.N)
	for k := range programOrder {
		programOrder[k] = k
	}
	naive, err := nopins.NewEvaluator(g, cfg.Machine, nopins.AssignFixed).EvaluateOrder(programOrder)
	if err != nil {
		return Record{}, fmt.Errorf("experiments: run %d: %w", i, err)
	}
	sched, err := core.Find(g, cfg.Machine, core.Options{
		Lambda:       cfg.Lambda,
		SeedPriority: listsched.ByHeight,
		Assign:       nopins.AssignFixed,
	})
	if err != nil {
		return Record{}, fmt.Errorf("experiments: run %d: %w", i, err)
	}
	return Record{
		Tuples:      g.N,
		InitialNOPs: naive.TotalNOPs,
		ListNOPs:    sched.InitialNOPs,
		FinalNOPs:   sched.TotalNOPs,
		OmegaCalls:  sched.Stats.OmegaCalls,
		Completed:   sched.Optimal,
		Elapsed:     sched.Stats.Elapsed,
	}, nil
}

// Split partitions records into completed (optimal) and truncated runs.
func (c *Campaign) Split() (completed, truncated []Record) {
	for _, r := range c.Records {
		if r.Completed {
			completed = append(completed, r)
		} else {
			truncated = append(truncated, r)
		}
	}
	return completed, truncated
}

// summarize computes the per-column averages of Table 7.
type summary struct {
	n           int
	pct         float64
	avgTuples   float64
	avgInitNOPs float64
	avgListNOPs float64
	avgFinNOPs  float64
	avgOmega    float64
	avgTime     time.Duration
}

func summarize(records []Record, total int) summary {
	s := summary{n: len(records)}
	if total > 0 {
		s.pct = 100 * float64(len(records)) / float64(total)
	}
	if len(records) == 0 {
		return s
	}
	var tuples, init, list, fin, omega float64
	var elapsed time.Duration
	for _, r := range records {
		tuples += float64(r.Tuples)
		init += float64(r.InitialNOPs)
		list += float64(r.ListNOPs)
		fin += float64(r.FinalNOPs)
		omega += float64(r.OmegaCalls)
		elapsed += r.Elapsed
	}
	n := float64(len(records))
	s.avgTuples = tuples / n
	s.avgInitNOPs = init / n
	s.avgListNOPs = list / n
	s.avgFinNOPs = fin / n
	s.avgOmega = omega / n
	s.avgTime = elapsed / time.Duration(len(records))
	return s
}

// Table7 renders the campaign the way the paper's Table 7 does:
// completed vs truncated columns plus totals.
func (c *Campaign) Table7() string {
	completed, truncated := c.Split()
	sc := summarize(completed, len(c.Records))
	st := summarize(truncated, len(c.Records))
	sa := summarize(c.Records, len(c.Records))

	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 7: Statistics for Scheduling %d Blocks (λ=%d, machine=%s)\n",
		len(c.Records), c.Config.Lambda, c.Config.Machine.Name)
	fmt.Fprintf(&sb, "%-28s %18s %18s %14s\n", "", "Search Completed", "Search Truncated", "Totals")
	fmt.Fprintf(&sb, "%-28s %18s %18s %14s\n", "", "(Optimal)", "(Suboptimal?)", "")
	row := func(label, a, b, t string) {
		fmt.Fprintf(&sb, "%-28s %18s %18s %14s\n", label, a, b, t)
	}
	row("Number of Runs", fmt.Sprintf("%d", sc.n), fmt.Sprintf("%d", st.n), fmt.Sprintf("%d", sa.n))
	row("Percentage of Runs",
		fmt.Sprintf("%.2f%%", sc.pct), fmt.Sprintf("%.2f%%", st.pct), "100%")
	row("Avg. Instructions/Block",
		fmt.Sprintf("%.2f", sc.avgTuples), fmt.Sprintf("%.2f", st.avgTuples), fmt.Sprintf("%.2f", sa.avgTuples))
	row("Avg. Initial NOPs",
		fmt.Sprintf("%.2f", sc.avgInitNOPs), fmt.Sprintf("%.2f", st.avgInitNOPs), fmt.Sprintf("%.2f", sa.avgInitNOPs))
	row("Avg. Seed NOPs",
		fmt.Sprintf("%.2f", sc.avgListNOPs), fmt.Sprintf("%.2f", st.avgListNOPs), fmt.Sprintf("%.2f", sa.avgListNOPs))
	row("Avg. Final NOPs",
		fmt.Sprintf("%.2f", sc.avgFinNOPs), fmt.Sprintf("%.2f", st.avgFinNOPs), fmt.Sprintf("%.2f", sa.avgFinNOPs))
	row("Avg. Ω Calls",
		fmt.Sprintf("%.1f", sc.avgOmega), fmt.Sprintf("%.1f", st.avgOmega), fmt.Sprintf("%.1f", sa.avgOmega))
	row("Avg. Search Time",
		fmtDur(sc.avgTime), fmtDur(st.avgTime), fmtDur(sa.avgTime))
	return sb.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// CSV renders all records as comma-separated values with a header, for
// external plotting.
func (c *Campaign) CSV() string {
	var sb strings.Builder
	sb.WriteString("tuples,initial_nops,list_nops,final_nops,omega_calls,completed,elapsed_ns\n")
	for _, r := range c.Records {
		fmt.Fprintf(&sb, "%d,%d,%d,%d,%d,%t,%d\n",
			r.Tuples, r.InitialNOPs, r.ListNOPs, r.FinalNOPs, r.OmegaCalls, r.Completed, r.Elapsed.Nanoseconds())
	}
	return sb.String()
}

// SizesSorted returns the distinct block sizes present, ascending.
func (c *Campaign) SizesSorted() []int {
	set := map[int]bool{}
	for _, r := range c.Records {
		set[r.Tuples] = true
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// DetailTable renders distribution detail beyond the paper's Table 7:
// percentiles of search effort and the NOPs removed by scheduling.
func (c *Campaign) DetailTable() string {
	omega := make([]float64, len(c.Records))
	saved := make([]float64, len(c.Records))
	for i, r := range c.Records {
		omega[i] = float64(r.OmegaCalls)
		saved[i] = float64(r.InitialNOPs - r.FinalNOPs)
	}
	var sb strings.Builder
	sb.WriteString("Campaign detail (distributions)\n")
	row := func(label string, xs []float64) {
		fmt.Fprintf(&sb, "%-22s p50=%-9.1f p90=%-9.1f p99=%-9.1f max=%-9.1f\n",
			label,
			stats.Percentile(xs, 50), stats.Percentile(xs, 90),
			stats.Percentile(xs, 99), stats.Percentile(xs, 100))
	}
	row("Ω calls", omega)
	row("NOPs removed", saved)
	return sb.String()
}
