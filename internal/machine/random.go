package machine

import (
	"fmt"
	"math/rand"

	"pipesched/internal/ir"
)

// Params bounds the random machine generator. The zero value selects the
// defaults shown on each field.
type Params struct {
	// MinPipelines..MaxPipelines bounds the pipeline-table size.
	MinPipelines int // default 1
	MaxPipelines int // default 5

	// MaxLatency bounds every pipeline's latency; enqueue times are drawn
	// in [1, latency], so a generated machine always satisfies Validate's
	// enqueue ≤ latency constraint by construction.
	MaxLatency int // default 8

	// SingleAssignment forces singleton op→pipeline sets (the paper's core
	// model, footnote 3). When false, ops may map to several pipelines,
	// exercising the assignment extension.
	SingleAssignment bool

	// NoPipePercent is the percentage chance (0..100) that a schedulable
	// operation maps to no pipeline at all (σ(ζ) = ∅), like Store and
	// Const in the paper's simulations. Default 12.
	NoPipePercent int
}

func (p Params) withDefaults() Params {
	if p.MinPipelines <= 0 {
		p.MinPipelines = 1
	}
	if p.MaxPipelines <= 0 {
		p.MaxPipelines = 5
	}
	if p.MaxPipelines < p.MinPipelines {
		p.MaxPipelines = p.MinPipelines
	}
	if p.MaxLatency <= 0 {
		p.MaxLatency = 8
	}
	if p.NoPipePercent <= 0 {
		p.NoPipePercent = 12
	}
	return p
}

// randomFunctions names the pipeline rows; repeats model multiple units
// of the same function, as in the paper's Tables 2 and 3.
var randomFunctions = []string{"loader", "adder", "multiplier", "divider", "shifter", "fpu"}

// Random draws a structurally valid machine description from rng: every
// pipeline has latency ≥ 1 and 1 ≤ enqueue ≤ latency, IDs are unique and
// positive, and the op map names only existing pipelines — so the result
// always passes Validate. The generator is deterministic in the rng
// stream, which is what lets a differential soak replay any machine from
// its seed alone. It is the machine-model half of the oracle's fuzz
// surface (internal/oracle pairs it with synth-generated blocks).
func Random(rng *rand.Rand, p Params) *Machine {
	p = p.withDefaults()
	n := p.MinPipelines + rng.Intn(p.MaxPipelines-p.MinPipelines+1)
	pipes := make([]Pipeline, n)
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		lat := 1 + rng.Intn(p.MaxLatency)
		pipes[i] = Pipeline{
			Function: randomFunctions[rng.Intn(len(randomFunctions))],
			ID:       i + 1,
			Latency:  lat,
			Enqueue:  1 + rng.Intn(lat),
		}
		ids[i] = i + 1
	}

	// Every operation the synthetic generator can emit gets a mapping:
	// usually a pipeline subset, occasionally σ = ∅ (the op issues in one
	// tick and never conflicts). Const and Store stay unmapped, as in
	// every preset.
	opMap := map[ir.Op][]int{}
	for _, op := range []ir.Op{ir.Load, ir.Add, ir.Sub, ir.Neg, ir.Mul, ir.Div, ir.Mod} {
		if rng.Intn(100) < p.NoPipePercent {
			continue
		}
		size := 1
		if !p.SingleAssignment && n > 1 && rng.Intn(2) == 0 {
			size = 1 + rng.Intn(n)
		}
		perm := rng.Perm(n)
		set := make([]int, size)
		for k := 0; k < size; k++ {
			set[k] = ids[perm[k]]
		}
		opMap[op] = set
	}

	m, err := New(fmt.Sprintf("fuzz-%08x", rng.Uint32()), pipes, opMap)
	if err != nil {
		// Unreachable by construction; a panic here is a generator bug.
		panic(fmt.Sprintf("machine: Random produced invalid description: %v", err))
	}
	return m
}
