package machine

import "pipesched/internal/ir"

// The presets below model processors the paper names in sections 1 and
// 2.2 — at the granularity the scheduling model cares about (per-pipeline
// latency and enqueue time for the tuple operation classes), not as
// full microarchitectural models. They broaden the test/benchmark
// surface beyond the paper's own two configurations.

// R3000Like models a MIPS R3000-flavored machine [Rio88]: single-cycle
// ALU, a 2-cycle load delay pipeline, and a long multicycle
// multiply/divide unit that is only partially pipelined.
func R3000Like() *Machine {
	m, err := New("r3000-like",
		[]Pipeline{
			{Function: "loader", ID: 1, Latency: 2, Enqueue: 1},
			{Function: "alu", ID: 2, Latency: 1, Enqueue: 1},
			{Function: "muldiv", ID: 3, Latency: 12, Enqueue: 10},
		},
		map[ir.Op][]int{
			ir.Load: {1},
			ir.Add:  {2},
			ir.Sub:  {2},
			ir.Neg:  {2},
			ir.Mul:  {3},
			ir.Div:  {3},
			ir.Mod:  {3},
		})
	if err != nil {
		panic(err) // impossible: static description
	}
	return m
}

// M88KLike models a Motorola 88000-flavored machine [Mel88]: separate
// fully-pipelined integer and memory units plus a 3-stage pipelined
// multiplier and an iterative (non-pipelined) divider.
func M88KLike() *Machine {
	m, err := New("m88k-like",
		[]Pipeline{
			{Function: "loader", ID: 1, Latency: 3, Enqueue: 1},
			{Function: "alu", ID: 2, Latency: 1, Enqueue: 1},
			{Function: "multiplier", ID: 3, Latency: 3, Enqueue: 1},
			{Function: "divider", ID: 4, Latency: 15, Enqueue: 15},
		},
		map[ir.Op][]int{
			ir.Load: {1},
			ir.Add:  {2},
			ir.Sub:  {2},
			ir.Neg:  {2},
			ir.Mul:  {3},
			ir.Div:  {4},
			ir.Mod:  {4},
		})
	if err != nil {
		panic(err) // impossible: static description
	}
	return m
}

// CARPLike models the CARP proposal's [DiS89] defining property: very
// long, variable-feeling global memory accesses (an interconnection
// network) next to fast fully-pipelined function units — the
// configuration where scheduling loads early matters most.
func CARPLike() *Machine {
	m, err := New("carp-like",
		[]Pipeline{
			{Function: "netload", ID: 1, Latency: 8, Enqueue: 1},
			{Function: "adder", ID: 2, Latency: 2, Enqueue: 1},
			{Function: "multiplier", ID: 3, Latency: 5, Enqueue: 1},
		},
		map[ir.Op][]int{
			ir.Load: {1},
			ir.Add:  {2},
			ir.Sub:  {2},
			ir.Neg:  {2},
			ir.Mul:  {3},
			ir.Div:  {3},
			ir.Mod:  {3},
		})
	if err != nil {
		panic(err) // impossible: static description
	}
	return m
}

// Presets returns every built-in machine by name.
func Presets() map[string]func() *Machine {
	return map[string]func() *Machine{
		"simulation":  SimulationMachine,
		"example":     ExampleMachine,
		"unpipelined": UnpipelinedMachine,
		"deep":        DeepMachine,
		"r3000":       R3000Like,
		"m88k":        M88KLike,
		"carp":        CARPLike,
	}
}
