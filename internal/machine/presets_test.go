package machine

import (
	"testing"

	"pipesched/internal/ir"
)

func TestAllPresetsValidate(t *testing.T) {
	for name, mk := range Presets() {
		m := mk()
		if err := m.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		// Every arithmetic op and Load must be mapped; Const/Store never.
		for _, op := range []ir.Op{ir.Load, ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod, ir.Neg} {
			if len(m.PipelinesFor(op)) == 0 {
				t.Errorf("preset %s: op %v unmapped", name, op)
			}
		}
		for _, op := range []ir.Op{ir.Const, ir.Store, ir.Nop} {
			if len(m.PipelinesFor(op)) != 0 {
				t.Errorf("preset %s: op %v should use no pipeline", name, op)
			}
		}
		// Round-trip through the textual codec.
		back, err := ParseString(m.String())
		if err != nil {
			t.Errorf("preset %s: codec round trip: %v", name, err)
		} else if back.String() != m.String() {
			t.Errorf("preset %s: codec round trip changed description", name)
		}
	}
}

func TestR3000LikeShape(t *testing.T) {
	m := R3000Like()
	if m.Latency(m.PipelineFor(ir.Add)) != 1 {
		t.Error("r3000-like ALU should be single-cycle")
	}
	md := m.Pipeline(m.PipelineFor(ir.Mul))
	if md.Latency < 10 || md.Enqueue < 2 {
		t.Errorf("r3000-like muldiv should be long and mostly serial: %v", md)
	}
}

func TestM88KLikeDividerSerial(t *testing.T) {
	m := M88KLike()
	div := m.Pipeline(m.PipelineFor(ir.Div))
	if div.Enqueue != div.Latency {
		t.Errorf("m88k-like divider should be non-pipelined: %v", div)
	}
	if m.PipelineFor(ir.Mul) == m.PipelineFor(ir.Div) {
		t.Error("m88k-like separates multiplier and divider")
	}
}

func TestCARPLikeMemoryDominates(t *testing.T) {
	m := CARPLike()
	ld := m.Pipeline(m.PipelineFor(ir.Load))
	if ld.Latency < 2*m.Latency(m.PipelineFor(ir.Add)) {
		t.Errorf("carp-like loads should dwarf ALU latency: %v", ld)
	}
	if ld.Enqueue != 1 {
		t.Errorf("carp-like network loads are fully pipelined: %v", ld)
	}
}
