package machine

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pipesched/internal/ir"
)

// Parse reads a machine description in the textual format emitted by
// Machine.String:
//
//	machine paper-simulation
//	pipe 1 loader latency=2 enqueue=1
//	pipe 3 multiplier latency=4 enqueue=2
//	op Load -> {1}
//	op Mul -> {3}
//
// Blank lines and lines starting with ';' or '//' are ignored.
func Parse(r io.Reader) (*Machine, error) {
	var (
		name   string
		pipes  []Pipeline
		opMap  = map[ir.Op][]int{}
		lineNo int
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "machine":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: want 'machine <name>'", ErrInvalid, lineNo)
			}
			name = fields[1]
		case "pipe":
			p, err := parsePipe(fields)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %w", ErrInvalid, lineNo, err)
			}
			pipes = append(pipes, p)
		case "op":
			op, ids, err := parseOpLine(fields)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %w", ErrInvalid, lineNo, err)
			}
			opMap[op] = ids
		default:
			return nil, fmt.Errorf("%w: line %d: unknown directive %q", ErrInvalid, lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(name, pipes, opMap)
}

func parsePipe(fields []string) (Pipeline, error) {
	// pipe <id> <function> latency=<n> enqueue=<n>
	if len(fields) != 5 {
		return Pipeline{}, fmt.Errorf("want 'pipe <id> <function> latency=<n> enqueue=<n>'")
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return Pipeline{}, fmt.Errorf("bad pipeline ID %q", fields[1])
	}
	p := Pipeline{ID: id, Function: fields[2]}
	for _, kv := range fields[3:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return Pipeline{}, fmt.Errorf("bad attribute %q", kv)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return Pipeline{}, fmt.Errorf("bad value in %q", kv)
		}
		switch parts[0] {
		case "latency":
			p.Latency = v
		case "enqueue":
			p.Enqueue = v
		default:
			return Pipeline{}, fmt.Errorf("unknown attribute %q", parts[0])
		}
	}
	return p, nil
}

func parseOpLine(fields []string) (ir.Op, []int, error) {
	// op <Op> -> {1,2}
	if len(fields) != 4 || fields[2] != "->" {
		return ir.Invalid, nil, fmt.Errorf("want 'op <Op> -> {ids}'")
	}
	op, err := ir.ParseOp(fields[1])
	if err != nil {
		return ir.Invalid, nil, err
	}
	set := strings.Trim(fields[3], "{}")
	var ids []int
	if set != "" {
		for _, s := range strings.Split(set, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return ir.Invalid, nil, fmt.Errorf("bad pipeline ID %q", s)
			}
			ids = append(ids, id)
		}
	}
	return op, ids, nil
}

// ParseString is Parse over an in-memory description.
func ParseString(s string) (*Machine, error) { return Parse(strings.NewReader(s)) }
