package machine

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestRandomAlwaysValid(t *testing.T) {
	cases := []Params{
		{},
		{SingleAssignment: true},
		{MinPipelines: 3, MaxPipelines: 3},
		{MaxPipelines: 1, MaxLatency: 1},
		{MaxLatency: 20, NoPipePercent: 100},
		{NoPipePercent: 1},
	}
	for seed := int64(0); seed < 300; seed++ {
		p := cases[seed%int64(len(cases))]
		m := Random(rand.New(rand.NewSource(seed)), p)
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d params %+v: invalid machine: %v", seed, p, err)
		}
		d := p.withDefaults()
		if n := len(m.Pipelines); n < d.MinPipelines || n > d.MaxPipelines {
			t.Fatalf("seed %d: %d pipelines outside [%d, %d]", seed, n, d.MinPipelines, d.MaxPipelines)
		}
		for _, pipe := range m.Pipelines {
			if pipe.Latency < 1 || pipe.Latency > d.MaxLatency {
				t.Fatalf("seed %d: latency %d outside [1, %d]", seed, pipe.Latency, d.MaxLatency)
			}
			if pipe.Enqueue < 1 || pipe.Enqueue > pipe.Latency {
				t.Fatalf("seed %d: enqueue %d outside [1, %d]", seed, pipe.Enqueue, pipe.Latency)
			}
		}
		for op, ids := range m.OpMap {
			if p.SingleAssignment && len(ids) > 1 {
				t.Fatalf("seed %d: %s maps to %d pipelines under SingleAssignment", seed, op, ids)
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	enc := func(seed int64) string {
		m := Random(rand.New(rand.NewSource(seed)), Params{})
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if enc(42) != enc(42) {
		t.Error("same seed produced different machines")
	}
	if enc(42) == enc(43) {
		t.Error("different seeds produced identical machines")
	}
}

func TestRandomNoPipePercentZeroValueMeansDefault(t *testing.T) {
	// With NoPipePercent forced to 100 every schedulable op is σ = ∅.
	m := Random(rand.New(rand.NewSource(1)), Params{NoPipePercent: 100})
	if len(m.OpMap) != 0 {
		t.Errorf("NoPipePercent=100 still mapped ops: %v", m.OpMap)
	}
}
