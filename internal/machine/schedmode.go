package machine

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// SchedKind enumerates the scheduler machine models ("modes"). The
// paper's model — in-order multi-pipeline, minimize total NOPs — is the
// zero value; the other kinds are the scenario-diversity extensions
// described in DESIGN.md §15.
type SchedKind uint8

const (
	// SchedPaper is the paper's model: minimize total NOPs on an
	// in-order multi-pipeline machine.
	SchedPaper SchedKind = iota
	// SchedMinRegLex minimizes lexicographically (total NOPs, MAXLIVE):
	// among all NOP-optimal schedules, the one with the lowest peak
	// register pressure.
	SchedMinRegLex
	// SchedMinRegK minimizes total NOPs subject to MAXLIVE ≤ K. A block
	// with no legal schedule under the constraint is infeasible (the
	// search proves that, too).
	SchedMinRegK
	// SchedScoreboard approximates an out-of-order core: instructions
	// enter a scoreboard window of Window entries in priority order and
	// up to Width of them issue per tick; the objective is total stall
	// ticks beyond the width-limited minimum.
	SchedScoreboard
)

// Field bounds for SchedMode.Validate. MaxSchedK must fit the packed
// lexicographic cost used by the search core (internal/core packs peak
// pressure into the low 20 bits of the incumbent).
const (
	MaxSchedK         = 1<<20 - 1
	MaxScoreboardSize = 1 << 16
	defaultSBWindow   = 8
	defaultSBWidth    = 2
)

// SchedMode selects a scheduler machine model plus its parameters. The
// zero value is the paper mode. Canonical textual forms:
//
//	paper
//	minreg-lex
//	minreg-k=<k>
//	scoreboard=<window>x<width>
//
// SchedMode marshals to/from JSON as its canonical string, so wire
// requests carry e.g. "sched": "minreg-k=4".
type SchedMode struct {
	Kind SchedKind

	// K is the MAXLIVE bound (SchedMinRegK only, ≥ 1).
	K int

	// Window and Width are the scoreboard geometry (SchedScoreboard
	// only, both ≥ 1). Window=1, Width=1 degenerates to the paper's
	// in-order model.
	Window int
	Width  int
}

// Convenience constructors for the non-paper modes.
func MinRegLex() SchedMode    { return SchedMode{Kind: SchedMinRegLex} }
func MinRegK(k int) SchedMode { return SchedMode{Kind: SchedMinRegK, K: k} }
func Scoreboard(w, i int) SchedMode {
	return SchedMode{Kind: SchedScoreboard, Window: w, Width: i}
}

// IsPaper reports whether the mode is the paper's default model.
func (s SchedMode) IsPaper() bool { return s.Kind == SchedPaper }

// NeedsPressure reports whether the mode couples register pressure into
// the search (either as an objective or a constraint).
func (s SchedMode) NeedsPressure() bool {
	return s.Kind == SchedMinRegLex || s.Kind == SchedMinRegK
}

// String names the mode family without its parameters — a bounded
// label set, usable as a metric label where the full canonical form
// (arbitrary k / geometry) would explode cardinality.
func (k SchedKind) String() string {
	switch k {
	case SchedPaper:
		return "paper"
	case SchedMinRegLex:
		return "minreg-lex"
	case SchedMinRegK:
		return "minreg-k"
	case SchedScoreboard:
		return "scoreboard"
	}
	return fmt.Sprintf("SchedKind(%d)", uint8(k))
}

// String renders the canonical textual form.
func (s SchedMode) String() string {
	switch s.Kind {
	case SchedPaper:
		return "paper"
	case SchedMinRegLex:
		return "minreg-lex"
	case SchedMinRegK:
		return fmt.Sprintf("minreg-k=%d", s.K)
	case SchedScoreboard:
		return fmt.Sprintf("scoreboard=%dx%d", s.Window, s.Width)
	default:
		return fmt.Sprintf("sched(%d)", s.Kind)
	}
}

// Validate checks the mode's parameters. Every failure wraps ErrInvalid,
// the machine-description error family, so callers can classify hostile
// configuration with errors.Is.
func (s SchedMode) Validate() error {
	switch s.Kind {
	case SchedPaper, SchedMinRegLex:
		if s.K != 0 || s.Window != 0 || s.Width != 0 {
			return fmt.Errorf("%w: mode %q takes no parameters (k=%d window=%d width=%d)",
				ErrInvalid, s.String(), s.K, s.Window, s.Width)
		}
	case SchedMinRegK:
		if s.Window != 0 || s.Width != 0 {
			return fmt.Errorf("%w: mode minreg-k takes no scoreboard geometry", ErrInvalid)
		}
		if s.K < 1 || s.K > MaxSchedK {
			return fmt.Errorf("%w: minreg-k bound %d out of range [1, %d]", ErrInvalid, s.K, MaxSchedK)
		}
	case SchedScoreboard:
		if s.K != 0 {
			return fmt.Errorf("%w: mode scoreboard takes no register bound", ErrInvalid)
		}
		if s.Window < 1 || s.Window > MaxScoreboardSize {
			return fmt.Errorf("%w: scoreboard window %d out of range [1, %d]",
				ErrInvalid, s.Window, MaxScoreboardSize)
		}
		if s.Width < 1 || s.Width > MaxScoreboardSize {
			return fmt.Errorf("%w: scoreboard width %d out of range [1, %d]",
				ErrInvalid, s.Width, MaxScoreboardSize)
		}
	default:
		return fmt.Errorf("%w: unknown scheduler mode kind %d", ErrInvalid, s.Kind)
	}
	return nil
}

// ParseSchedMode reads a mode from its textual form. The empty string
// selects the paper mode (the wire default); "scoreboard" without
// geometry selects the 8x2 default window. Errors wrap ErrInvalid.
func ParseSchedMode(text string) (SchedMode, error) {
	t := strings.TrimSpace(text)
	switch t {
	case "", "paper":
		return SchedMode{}, nil
	case "minreg-lex":
		return MinRegLex(), nil
	case "scoreboard":
		return Scoreboard(defaultSBWindow, defaultSBWidth), nil
	}
	if rest, ok := strings.CutPrefix(t, "minreg-k="); ok {
		k, err := strconv.Atoi(rest)
		if err != nil {
			return SchedMode{}, fmt.Errorf("%w: bad minreg-k bound %q", ErrInvalid, rest)
		}
		m := MinRegK(k)
		if err := m.Validate(); err != nil {
			return SchedMode{}, err
		}
		return m, nil
	}
	if rest, ok := strings.CutPrefix(t, "scoreboard="); ok {
		ws, is, ok := strings.Cut(rest, "x")
		if !ok {
			return SchedMode{}, fmt.Errorf("%w: bad scoreboard geometry %q (want <window>x<width>)",
				ErrInvalid, rest)
		}
		w, werr := strconv.Atoi(ws)
		i, ierr := strconv.Atoi(is)
		if werr != nil || ierr != nil {
			return SchedMode{}, fmt.Errorf("%w: bad scoreboard geometry %q (want <window>x<width>)",
				ErrInvalid, rest)
		}
		m := Scoreboard(w, i)
		if err := m.Validate(); err != nil {
			return SchedMode{}, err
		}
		return m, nil
	}
	return SchedMode{}, fmt.Errorf("%w: unknown scheduler mode %q (want paper, minreg-lex, minreg-k=<k> or scoreboard=<window>x<width>)",
		ErrInvalid, t)
}

// MarshalJSON encodes the canonical string form.
func (s SchedMode) MarshalJSON() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes the canonical string form ("" = paper).
func (s *SchedMode) UnmarshalJSON(data []byte) error {
	var text string
	if err := json.Unmarshal(data, &text); err != nil {
		return fmt.Errorf("%w: scheduler mode must be a JSON string: %v", ErrInvalid, err)
	}
	m, err := ParseSchedMode(text)
	if err != nil {
		return err
	}
	*s = m
	return nil
}
