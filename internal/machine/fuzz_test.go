package machine

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// fuzzSeedMachines returns the corpus machines for the codec fuzzers:
// every preset plus a couple of fuzzed descriptions.
func fuzzSeedMachines() []*Machine {
	ms := []*Machine{
		SimulationMachine(),
		ExampleMachine(),
		UnpipelinedMachine(),
		DeepMachine(),
		Random(rand.New(rand.NewSource(1)), Params{}),
		Random(rand.New(rand.NewSource(2)), Params{SingleAssignment: true}),
	}
	return ms
}

// FuzzMachineJSON feeds arbitrary bytes through the JSON codec: inputs
// that decode must validate and survive a marshal→unmarshal round trip
// byte-identically; no input may panic the decoder.
func FuzzMachineJSON(f *testing.F) {
	for _, m := range fuzzSeedMachines() {
		data, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","pipelines":[{"function":"f","id":1,"latency":0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseJSON(data)
		if err != nil {
			return // malformed input rejected: fine
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ParseJSON accepted an invalid machine: %v\ninput: %s", err, data)
		}
		out1, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted machine does not marshal: %v", err)
		}
		m2, err := ParseJSON(out1)
		if err != nil {
			t.Fatalf("round trip does not parse: %v\nencoded: %s", err, out1)
		}
		out2, err := json.Marshal(m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("round trip not stable:\nfirst:  %s\nsecond: %s", out1, out2)
		}
	})
}

// FuzzMachineText feeds arbitrary text through the table-format parser:
// no input may panic it, and accepted machines must validate and survive
// the JSON round trip.
func FuzzMachineText(f *testing.F) {
	for _, m := range fuzzSeedMachines() {
		f.Add(m.String())
	}
	f.Add("")
	f.Add("machine m\npipe 1 loader latency=2 enqueue=1\nop Load -> {1}\n")
	f.Add("pipe broken\n")
	f.Fuzz(func(t *testing.T, text string) {
		m, err := ParseString(text)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ParseString accepted an invalid machine: %v\ninput: %q", err, text)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted machine does not marshal: %v", err)
		}
		if _, err := ParseJSON(data); err != nil {
			t.Fatalf("accepted machine does not re-parse from JSON: %v", err)
		}
	})
}
