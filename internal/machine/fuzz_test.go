package machine

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
)

// fuzzSeedMachines returns the corpus machines for the codec fuzzers:
// every preset plus a couple of fuzzed descriptions.
func fuzzSeedMachines() []*Machine {
	ms := []*Machine{
		SimulationMachine(),
		ExampleMachine(),
		UnpipelinedMachine(),
		DeepMachine(),
		Random(rand.New(rand.NewSource(1)), Params{}),
		Random(rand.New(rand.NewSource(2)), Params{SingleAssignment: true}),
	}
	return ms
}

// FuzzMachineJSON feeds arbitrary bytes through the JSON codec: inputs
// that decode must validate and survive a marshal→unmarshal round trip
// byte-identically; no input may panic the decoder.
func FuzzMachineJSON(f *testing.F) {
	for _, m := range fuzzSeedMachines() {
		data, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","pipelines":[{"function":"f","id":1,"latency":0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseJSON(data)
		if err != nil {
			return // malformed input rejected: fine
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ParseJSON accepted an invalid machine: %v\ninput: %s", err, data)
		}
		out1, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted machine does not marshal: %v", err)
		}
		m2, err := ParseJSON(out1)
		if err != nil {
			t.Fatalf("round trip does not parse: %v\nencoded: %s", err, out1)
		}
		out2, err := json.Marshal(m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("round trip not stable:\nfirst:  %s\nsecond: %s", out1, out2)
		}
	})
}

// FuzzSchedMode feeds arbitrary text (and, via the JSON leg, arbitrary
// JSON strings) through the scheduler-mode parser: hostile inputs must
// yield ErrInvalid-family errors — never a panic — and accepted modes
// must validate and round-trip through both the canonical string and
// JSON codecs.
func FuzzSchedMode(f *testing.F) {
	for _, s := range []string{
		"", "paper", "minreg-lex", "minreg-k=4", "scoreboard", "scoreboard=8x2",
		"scoreboard=1x1", "minreg-k=1048575", "minreg-k=0", "scoreboard=0x0",
		"minreg-k=-1", "scoreboard=axb", "scoreboard=4x", "bogus", "minreg-k=9e9",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		m, err := ParseSchedMode(text)
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("ParseSchedMode(%q) error %v does not wrap ErrInvalid", text, err)
			}
			// Rejected text must also be rejected as a JSON string.
			data, merr := json.Marshal(text)
			if merr != nil {
				return
			}
			var jm SchedMode
			if jerr := json.Unmarshal(data, &jm); jerr == nil {
				t.Fatalf("JSON codec accepted mode %q that ParseSchedMode rejected (%v)", text, err)
			}
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("ParseSchedMode(%q) accepted invalid mode %+v: %v", text, m, verr)
		}
		again, err := ParseSchedMode(m.String())
		if err != nil || again != m {
			t.Fatalf("canonical form %q of input %q does not round-trip: %+v, %v",
				m.String(), text, again, err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted mode %+v does not marshal: %v", m, err)
		}
		var back SchedMode
		if err := json.Unmarshal(data, &back); err != nil || back != m {
			t.Fatalf("JSON round trip of %+v via %s: %+v, %v", m, data, back, err)
		}
	})
}

// FuzzMachineText feeds arbitrary text through the table-format parser:
// no input may panic it, and accepted machines must validate and survive
// the JSON round trip.
func FuzzMachineText(f *testing.F) {
	for _, m := range fuzzSeedMachines() {
		f.Add(m.String())
	}
	f.Add("")
	f.Add("machine m\npipe 1 loader latency=2 enqueue=1\nop Load -> {1}\n")
	f.Add("pipe broken\n")
	f.Fuzz(func(t *testing.T, text string) {
		m, err := ParseString(text)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ParseString accepted an invalid machine: %v\ninput: %q", err, text)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted machine does not marshal: %v", err)
		}
		if _, err := ParseJSON(data); err != nil {
			t.Fatalf("accepted machine does not re-parse from JSON: %v", err)
		}
	})
}
