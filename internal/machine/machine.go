// Package machine models the target processor's pipelined resources.
//
// A machine is described by exactly the two tables of the paper's
// section 4.1: a pipeline description table (one row per hardware
// pipeline, giving its function name, identifier, latency and enqueue
// time) and an operation-to-pipeline mapping table (the set of pipelines
// each operation type may execute on).
//
//   - Latency is the number of clock ticks between enqueuing an operation
//     and its result becoming available — the minimum issue distance
//     between a producer and a dependent consumer.
//   - Enqueue time is the minimum number of clock ticks between enqueuing
//     two operations in the same pipeline — the structural-conflict
//     spacing. A non-pipelined functional unit is modeled by setting
//     enqueue time equal to latency.
//
// Operations mapped to no pipeline (σ(ζ) = ∅, e.g. Store and Const in the
// paper's simulations) issue in one tick and never conflict or impose
// latency.
package machine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pipesched/internal/ir"
)

// ErrInvalid is wrapped by every error reporting a structurally invalid
// machine description, so callers can classify with errors.Is. An
// invalid description must never reach the scheduler: zero or negative
// latencies and enqueue times, empty pipeline tables, and op-map entries
// naming unknown pipelines would silently corrupt the NOP-insertion
// analysis.
var ErrInvalid = errors.New("machine: invalid description")

// NoPipeline is the identifier meaning σ(ζ) = ∅: the operation uses no
// pipelined resource.
const NoPipeline = 0

// Pipeline is one row of the pipeline description table.
type Pipeline struct {
	Function string // human-readable function name, e.g. "loader"
	ID       int    // unique identifier, > 0
	Latency  int    // ticks from enqueue until the result is available
	Enqueue  int    // minimum ticks between enqueues into this pipeline
}

// String renders the row like "loader(#1 lat=2 enq=1)".
func (p Pipeline) String() string {
	return fmt.Sprintf("%s(#%d lat=%d enq=%d)", p.Function, p.ID, p.Latency, p.Enqueue)
}

// Machine is a complete processor description: the pipeline table plus
// the operation-to-pipeline mapping.
type Machine struct {
	Name      string
	Pipelines []Pipeline      // the pipeline description table
	OpMap     map[ir.Op][]int // operation -> set of usable pipeline IDs

	byID map[int]*Pipeline
}

// New assembles a Machine and validates it.
func New(name string, pipes []Pipeline, opMap map[ir.Op][]int) (*Machine, error) {
	m := &Machine{Name: name, Pipelines: pipes, OpMap: opMap}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	m.buildIndex()
	return m, nil
}

func (m *Machine) buildIndex() {
	m.byID = make(map[int]*Pipeline, len(m.Pipelines))
	for i := range m.Pipelines {
		m.byID[m.Pipelines[i].ID] = &m.Pipelines[i]
	}
}

// Validate checks the machine description for structural errors. Every
// violation wraps ErrInvalid.
func (m *Machine) Validate() error {
	if len(m.Pipelines) == 0 {
		return fmt.Errorf("%w: empty pipeline table", ErrInvalid)
	}
	seen := map[int]bool{}
	for _, p := range m.Pipelines {
		if p.ID <= 0 {
			return fmt.Errorf("%w: pipeline %q has non-positive ID %d", ErrInvalid, p.Function, p.ID)
		}
		if seen[p.ID] {
			return fmt.Errorf("%w: duplicate pipeline ID %d", ErrInvalid, p.ID)
		}
		seen[p.ID] = true
		if p.Latency < 1 {
			return fmt.Errorf("%w: pipeline %d latency %d < 1", ErrInvalid, p.ID, p.Latency)
		}
		if p.Enqueue < 1 {
			return fmt.Errorf("%w: pipeline %d enqueue time %d < 1", ErrInvalid, p.ID, p.Enqueue)
		}
		if p.Enqueue > p.Latency {
			return fmt.Errorf("%w: pipeline %d enqueue time %d exceeds latency %d",
				ErrInvalid, p.ID, p.Enqueue, p.Latency)
		}
	}
	for op, ids := range m.OpMap {
		if !op.Valid() {
			return fmt.Errorf("%w: op map contains invalid operation", ErrInvalid)
		}
		for _, id := range ids {
			if id != NoPipeline && !seen[id] {
				return fmt.Errorf("%w: op %s mapped to unknown pipeline %d", ErrInvalid, op, id)
			}
		}
	}
	return nil
}

// Pipeline returns the pipeline with the given identifier, or nil for
// NoPipeline or an unknown ID.
func (m *Machine) Pipeline(id int) *Pipeline {
	if id == NoPipeline {
		return nil
	}
	if m.byID == nil {
		m.buildIndex()
	}
	return m.byID[id]
}

// PipelinesFor returns the set of pipeline IDs that may execute op.
// A nil/empty result means σ = ∅ for this operation.
func (m *Machine) PipelinesFor(op ir.Op) []int { return m.OpMap[op] }

// PipelineFor returns the single pipeline assigned to op under the
// paper's core model (singleton sets; their footnote 3). When the op maps
// to several pipelines it returns the first — callers wanting assignment
// search use PipelinesFor.
func (m *Machine) PipelineFor(op ir.Op) int {
	ids := m.OpMap[op]
	if len(ids) == 0 {
		return NoPipeline
	}
	return ids[0]
}

// Latency returns the latency of pipeline id, or 0 for NoPipeline.
func (m *Machine) Latency(id int) int {
	if p := m.Pipeline(id); p != nil {
		return p.Latency
	}
	return 0
}

// EnqueueTime returns the enqueue time of pipeline id, or 0 for NoPipeline.
func (m *Machine) EnqueueTime(id int) int {
	if p := m.Pipeline(id); p != nil {
		return p.Enqueue
	}
	return 0
}

// MaxLatency returns the largest latency over all pipelines.
func (m *Machine) MaxLatency() int {
	max := 0
	for _, p := range m.Pipelines {
		if p.Latency > max {
			max = p.Latency
		}
	}
	return max
}

// HasAssignmentChoice reports whether any operation maps to more than one
// pipeline (the Tables 2/3 model, which needs the assignment extension).
func (m *Machine) HasAssignmentChoice() bool {
	for _, ids := range m.OpMap {
		if len(ids) > 1 {
			return true
		}
	}
	return false
}

// String renders both description tables in a compact textual form.
func (m *Machine) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine %s\n", m.Name)
	for _, p := range m.Pipelines {
		fmt.Fprintf(&sb, "pipe %d %s latency=%d enqueue=%d\n", p.ID, p.Function, p.Latency, p.Enqueue)
	}
	ops := make([]ir.Op, 0, len(m.OpMap))
	for op := range m.OpMap {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		ids := make([]string, len(m.OpMap[op]))
		for i, id := range m.OpMap[op] {
			ids[i] = fmt.Sprintf("%d", id)
		}
		fmt.Fprintf(&sb, "op %s -> {%s}\n", op, strings.Join(ids, ","))
	}
	return sb.String()
}

// SimulationMachine returns the machine used for the paper's results
// (section 5.1, Tables 4 and 5): a conservative single-pipeline-per-
// function design. The paper's table legibly gives loader latency 2 /
// enqueue 1 and multiplier latency 4 / enqueue 2; the adder row (latency
// 2, enqueue 1) is our documented reconstruction (DESIGN.md §6).
// Const and Store use no pipeline.
func SimulationMachine() *Machine {
	m, err := New("paper-simulation",
		[]Pipeline{
			{Function: "loader", ID: 1, Latency: 2, Enqueue: 1},
			{Function: "adder", ID: 2, Latency: 2, Enqueue: 1},
			{Function: "multiplier", ID: 3, Latency: 4, Enqueue: 2},
		},
		map[ir.Op][]int{
			ir.Load: {1},
			ir.Add:  {2},
			ir.Sub:  {2},
			ir.Neg:  {2},
			ir.Mul:  {3},
			ir.Div:  {3},
			ir.Mod:  {3},
		})
	if err != nil {
		panic(err) // impossible: static description
	}
	return m
}

// ExampleMachine returns the richer example machine of the paper's
// Tables 2 and 3: two loaders, two adders and one multiplier, with Add
// and Sub sharing the two adder pipelines and Mul and Div sharing the
// multiplier. Scheduling for it requires the pipeline-assignment
// extension because the op→pipeline sets are not singletons.
func ExampleMachine() *Machine {
	m, err := New("paper-example",
		[]Pipeline{
			{Function: "loader", ID: 1, Latency: 2, Enqueue: 1},
			{Function: "loader", ID: 2, Latency: 2, Enqueue: 1},
			{Function: "adder", ID: 3, Latency: 4, Enqueue: 3},
			{Function: "adder", ID: 4, Latency: 4, Enqueue: 3},
			{Function: "multiplier", ID: 5, Latency: 4, Enqueue: 2},
		},
		map[ir.Op][]int{
			ir.Load: {1, 2},
			ir.Add:  {3, 4},
			ir.Sub:  {3, 4},
			ir.Neg:  {3, 4},
			ir.Mul:  {5},
			ir.Div:  {5},
			ir.Mod:  {5},
		})
	if err != nil {
		panic(err) // impossible: static description
	}
	return m
}

// UnpipelinedMachine models a processor whose functional units are not
// internally pipelined (enqueue time = latency), useful for studying the
// conflict-delay behaviour the enqueue-time parameter was introduced for.
func UnpipelinedMachine() *Machine {
	m, err := New("unpipelined",
		[]Pipeline{
			{Function: "loader", ID: 1, Latency: 2, Enqueue: 2},
			{Function: "adder", ID: 2, Latency: 2, Enqueue: 2},
			{Function: "multiplier", ID: 3, Latency: 4, Enqueue: 4},
		},
		map[ir.Op][]int{
			ir.Load: {1},
			ir.Add:  {2},
			ir.Sub:  {2},
			ir.Neg:  {2},
			ir.Mul:  {3},
			ir.Div:  {3},
			ir.Mod:  {3},
		})
	if err != nil {
		panic(err) // impossible: static description
	}
	return m
}

// DeepMachine is a configuration with long, deeply pipelined units,
// exaggerating latency so that scheduling quality differences are easy
// to observe in examples and ablation benchmarks.
func DeepMachine() *Machine {
	m, err := New("deep",
		[]Pipeline{
			{Function: "loader", ID: 1, Latency: 4, Enqueue: 1},
			{Function: "adder", ID: 2, Latency: 3, Enqueue: 1},
			{Function: "multiplier", ID: 3, Latency: 8, Enqueue: 2},
		},
		map[ir.Op][]int{
			ir.Load: {1},
			ir.Add:  {2},
			ir.Sub:  {2},
			ir.Neg:  {2},
			ir.Mul:  {3},
			ir.Div:  {3},
			ir.Mod:  {3},
		})
	if err != nil {
		panic(err) // impossible: static description
	}
	return m
}
