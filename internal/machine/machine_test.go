package machine

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"pipesched/internal/ir"
)

func TestSimulationMachineMatchesPaperTable4(t *testing.T) {
	m := SimulationMachine()
	// Paper Table 4 (legible rows): loader latency 2 / enqueue 1,
	// multiplier latency 4 / enqueue 2.
	ld := m.Pipeline(m.PipelineFor(ir.Load))
	if ld == nil || ld.Latency != 2 || ld.Enqueue != 1 {
		t.Errorf("loader = %v, want latency 2 enqueue 1", ld)
	}
	mul := m.Pipeline(m.PipelineFor(ir.Mul))
	if mul == nil || mul.Latency != 4 || mul.Enqueue != 2 {
		t.Errorf("multiplier = %v, want latency 4 enqueue 2", mul)
	}
	// Single pipeline per function: no assignment choice.
	if m.HasAssignmentChoice() {
		t.Error("simulation machine should have singleton op→pipeline sets")
	}
	// Const and Store use no pipeline (σ = ∅).
	if m.PipelineFor(ir.Const) != NoPipeline || m.PipelineFor(ir.Store) != NoPipeline {
		t.Error("Const/Store must map to NoPipeline")
	}
	// Add and Sub share the single adder.
	if m.PipelineFor(ir.Add) != m.PipelineFor(ir.Sub) {
		t.Error("Add and Sub must share the adder pipeline")
	}
}

func TestExampleMachineMatchesPaperTables2And3(t *testing.T) {
	m := ExampleMachine()
	if len(m.Pipelines) != 5 {
		t.Fatalf("example machine has %d pipelines, want 5", len(m.Pipelines))
	}
	// Table 2: loaders lat 2/enq 1, adders lat 4/enq 3, multiplier lat 4/enq 2.
	wants := map[int][2]int{1: {2, 1}, 2: {2, 1}, 3: {4, 3}, 4: {4, 3}, 5: {4, 2}}
	for id, le := range wants {
		p := m.Pipeline(id)
		if p == nil || p.Latency != le[0] || p.Enqueue != le[1] {
			t.Errorf("pipeline %d = %v, want latency %d enqueue %d", id, p, le[0], le[1])
		}
	}
	// Table 3: Load→{1,2}, Add/Sub→{3,4}, Mul/Div→{5}.
	check := func(op ir.Op, want ...int) {
		got := m.PipelinesFor(op)
		if len(got) != len(want) {
			t.Errorf("%s -> %v, want %v", op, got, want)
			return
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s -> %v, want %v", op, got, want)
				return
			}
		}
	}
	check(ir.Load, 1, 2)
	check(ir.Add, 3, 4)
	check(ir.Sub, 3, 4)
	check(ir.Mul, 5)
	check(ir.Div, 5)
	if !m.HasAssignmentChoice() {
		t.Error("example machine must offer assignment choice")
	}
}

func TestUnpipelinedMachineEnqueueEqualsLatency(t *testing.T) {
	m := UnpipelinedMachine()
	for _, p := range m.Pipelines {
		if p.Enqueue != p.Latency {
			t.Errorf("pipeline %v: unpipelined units need enqueue == latency", p)
		}
	}
}

func TestLatencyAndEnqueueLookups(t *testing.T) {
	m := SimulationMachine()
	if m.Latency(NoPipeline) != 0 || m.EnqueueTime(NoPipeline) != 0 {
		t.Error("NoPipeline must have zero latency and enqueue time")
	}
	if m.Latency(99) != 0 {
		t.Error("unknown pipeline must report zero latency")
	}
	id := m.PipelineFor(ir.Mul)
	if m.Latency(id) != 4 || m.EnqueueTime(id) != 2 {
		t.Errorf("multiplier lookups wrong: lat=%d enq=%d", m.Latency(id), m.EnqueueTime(id))
	}
	if m.MaxLatency() != 4 {
		t.Errorf("MaxLatency = %d, want 4", m.MaxLatency())
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name  string
		pipes []Pipeline
		opMap map[ir.Op][]int
	}{
		{"dup id", []Pipeline{{Function: "a", ID: 1, Latency: 1, Enqueue: 1}, {Function: "b", ID: 1, Latency: 1, Enqueue: 1}}, nil},
		{"zero id", []Pipeline{{Function: "a", ID: 0, Latency: 1, Enqueue: 1}}, nil},
		{"zero latency", []Pipeline{{Function: "a", ID: 1, Latency: 0, Enqueue: 1}}, nil},
		{"zero enqueue", []Pipeline{{Function: "a", ID: 1, Latency: 2, Enqueue: 0}}, nil},
		{"enqueue > latency", []Pipeline{{Function: "a", ID: 1, Latency: 2, Enqueue: 3}}, nil},
		{"unknown pipe in map", []Pipeline{{Function: "a", ID: 1, Latency: 2, Enqueue: 1}},
			map[ir.Op][]int{ir.Load: {7}}},
		{"invalid op in map", []Pipeline{{Function: "a", ID: 1, Latency: 2, Enqueue: 1}},
			map[ir.Op][]int{ir.Invalid: {1}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New("bad", c.pipes, c.opMap)
			if err == nil {
				t.Fatalf("New accepted %s", c.name)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("%s: error %v does not wrap ErrInvalid", c.name, err)
			}
		})
	}
}

// TestErrInvalidClassification pins the ErrInvalid taxonomy: every way a
// machine description can be structurally wrong — including an empty
// pipeline table and parse-level violations — classifies with errors.Is.
func TestErrInvalidClassification(t *testing.T) {
	if _, err := New("empty", nil, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty pipeline table: err = %v, want ErrInvalid", err)
	}
	bad := []string{
		"machine x\npipe 1 loader latency=0 enqueue=1\n",
		"machine x\npipe 1 loader latency=2 enqueue=0\n",
		"machine x\npipe 1 loader latency=2 enqueue=1\nop Load -> {9}\n",
		"machine x\n", // no pipelines at all
	}
	for _, src := range bad {
		if _, err := ParseString(src); !errors.Is(err, ErrInvalid) {
			t.Errorf("ParseString(%q): err = %v, want ErrInvalid", src, err)
		}
	}
	if _, err := ParseString(SimulationMachine().String()); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, m := range []*Machine{SimulationMachine(), ExampleMachine(), UnpipelinedMachine(), DeepMachine()} {
		parsed, err := ParseString(m.String())
		if err != nil {
			t.Fatalf("%s: ParseString: %v", m.Name, err)
		}
		if parsed.String() != m.String() {
			t.Errorf("%s round trip mismatch:\n%s\nvs\n%s", m.Name, parsed.String(), m.String())
		}
	}
}

func TestParseWithCommentsAndBlanks(t *testing.T) {
	src := `
; comment
machine demo

// another
pipe 1 loader latency=3 enqueue=1
op Load -> {1}
`
	m, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if m.Name != "demo" || m.Latency(1) != 3 {
		t.Errorf("parsed wrong machine: %s", m)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus directive",
		"machine",
		"pipe x loader latency=1 enqueue=1",
		"pipe 1 loader latency=1",
		"pipe 1 loader latency=a enqueue=1",
		"pipe 1 loader depth=1 enqueue=1",
		"pipe 1 loader latency enqueue=1",
		"op Load {1}",
		"op Bogus -> {1}",
		"op Load -> {x}",
		"machine m\npipe 1 loader latency=2 enqueue=1\nop Load -> {9}",
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", s)
		}
	}
}

func TestStringContainsTables(t *testing.T) {
	s := ExampleMachine().String()
	for _, want := range []string{"machine paper-example", "pipe 5 multiplier latency=4 enqueue=2", "op Load -> {1,2}"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestPipelineLookupUnknown(t *testing.T) {
	m := SimulationMachine()
	if m.Pipeline(NoPipeline) != nil {
		t.Error("Pipeline(NoPipeline) must be nil")
	}
	if m.Pipeline(42) != nil {
		t.Error("Pipeline(42) must be nil")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for name, mk := range Presets() {
		m := mk()
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if back.String() != m.String() {
			t.Errorf("%s: JSON round trip changed machine:\n%s\nvs\n%s", name, back, m)
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	bad := []string{
		`{`, // malformed
		`{"name":"x","pipelines":[{"Function":"a","ID":1,"Latency":0,"Enqueue":1}],"ops":{}}`,
		`{"name":"x","pipelines":[],"ops":{"Bogus":[1]}}`,
		`{"name":"x","pipelines":[{"Function":"a","ID":1,"Latency":2,"Enqueue":1}],"ops":{"Load":[9]}}`,
	}
	for _, s := range bad {
		if _, err := ParseJSON([]byte(s)); err == nil {
			t.Errorf("ParseJSON(%q) succeeded, want error", s)
		}
	}
}

func TestJSONEditable(t *testing.T) {
	// A hand-written JSON machine loads correctly.
	src := `{
		"name": "handmade",
		"pipelines": [
			{"Function": "loader", "ID": 1, "Latency": 3, "Enqueue": 1},
			{"Function": "alu", "ID": 2, "Latency": 1, "Enqueue": 1}
		],
		"ops": {"Load": [1], "Add": [2], "Mul": [2]}
	}`
	m, err := ParseJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "handmade" || m.Latency(1) != 3 || m.PipelineFor(ir.Mul) != 2 {
		t.Errorf("hand-written machine parsed wrong: %s", m)
	}
}
