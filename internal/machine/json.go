package machine

import (
	"encoding/json"
	"fmt"
	"sort"

	"pipesched/internal/ir"
)

// jsonMachine is the wire form of a Machine: the op map keys become
// mnemonic strings so the JSON is human-editable.
type jsonMachine struct {
	Name      string           `json:"name"`
	Pipelines []Pipeline       `json:"pipelines"`
	Ops       map[string][]int `json:"ops"`
}

// MarshalJSON encodes the machine description as JSON.
func (m *Machine) MarshalJSON() ([]byte, error) {
	jm := jsonMachine{Name: m.Name, Pipelines: m.Pipelines, Ops: map[string][]int{}}
	for op, ids := range m.OpMap {
		jm.Ops[op.String()] = ids
	}
	return json.Marshal(jm)
}

// UnmarshalJSON decodes and validates a machine description.
func (m *Machine) UnmarshalJSON(data []byte) error {
	var jm jsonMachine
	if err := json.Unmarshal(data, &jm); err != nil {
		return err
	}
	opMap := map[ir.Op][]int{}
	names := make([]string, 0, len(jm.Ops))
	for name := range jm.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		op, err := ir.ParseOp(name)
		if err != nil {
			return fmt.Errorf("machine: json op map: %w", err)
		}
		opMap[op] = jm.Ops[name]
	}
	built, err := New(jm.Name, jm.Pipelines, opMap)
	if err != nil {
		return err
	}
	*m = *built
	return nil
}

// ParseJSON reads a machine description from JSON bytes.
func ParseJSON(data []byte) (*Machine, error) {
	m := &Machine{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, err
	}
	return m, nil
}
