package machine

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestSchedModeCanonicalRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want SchedMode
		str  string
	}{
		{"", SchedMode{}, "paper"},
		{"paper", SchedMode{}, "paper"},
		{" paper ", SchedMode{}, "paper"},
		{"minreg-lex", MinRegLex(), "minreg-lex"},
		{"minreg-k=1", MinRegK(1), "minreg-k=1"},
		{"minreg-k=16", MinRegK(16), "minreg-k=16"},
		{"scoreboard", Scoreboard(8, 2), "scoreboard=8x2"},
		{"scoreboard=1x1", Scoreboard(1, 1), "scoreboard=1x1"},
		{"scoreboard=32x4", Scoreboard(32, 4), "scoreboard=32x4"},
	}
	for _, c := range cases {
		got, err := ParseSchedMode(c.in)
		if err != nil {
			t.Fatalf("ParseSchedMode(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseSchedMode(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if got.String() != c.str {
			t.Errorf("ParseSchedMode(%q).String() = %q, want %q", c.in, got.String(), c.str)
		}
		again, err := ParseSchedMode(got.String())
		if err != nil || again != got {
			t.Errorf("canonical form %q does not round-trip: %+v, %v", got.String(), again, err)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("parsed mode %q fails Validate: %v", c.in, err)
		}
	}
}

func TestSchedModeParseErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"minreg",
		"minreg-k",
		"minreg-k=",
		"minreg-k=0",
		"minreg-k=-3",
		"minreg-k=99999999999999999999",
		"minreg-k=2000000",
		"scoreboard=",
		"scoreboard=0x1",
		"scoreboard=1x0",
		"scoreboard=axb",
		"scoreboard=4",
		"scoreboard=4x",
		"scoreboard=x4",
		"scoreboard=999999x1",
		"paper=1",
	}
	for _, in := range bad {
		if _, err := ParseSchedMode(in); !errors.Is(err, ErrInvalid) {
			t.Errorf("ParseSchedMode(%q) = %v, want ErrInvalid", in, err)
		}
	}
}

func TestSchedModeValidate(t *testing.T) {
	bad := []SchedMode{
		{Kind: SchedPaper, K: 3},
		{Kind: SchedMinRegLex, Window: 2},
		{Kind: SchedMinRegK, K: 0},
		{Kind: SchedMinRegK, K: MaxSchedK + 1},
		{Kind: SchedMinRegK, K: 2, Window: 1},
		{Kind: SchedScoreboard, Window: 0, Width: 1},
		{Kind: SchedScoreboard, Window: 1, Width: 0},
		{Kind: SchedScoreboard, Window: 1, Width: 1, K: 2},
		{Kind: SchedKind(200)},
	}
	for _, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("Validate(%+v) = %v, want ErrInvalid", m, err)
		}
	}
	good := []SchedMode{{}, MinRegLex(), MinRegK(1), MinRegK(MaxSchedK), Scoreboard(1, 1)}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", m, err)
		}
	}
}

func TestSchedModeJSON(t *testing.T) {
	for _, m := range []SchedMode{{}, MinRegLex(), MinRegK(7), Scoreboard(16, 2)} {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal %+v: %v", m, err)
		}
		var back SchedMode
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != m {
			t.Errorf("JSON round trip %+v -> %s -> %+v", m, data, back)
		}
	}
	var m SchedMode
	if err := json.Unmarshal([]byte(`"minreg-k=zzz"`), &m); !errors.Is(err, ErrInvalid) {
		t.Errorf("hostile JSON mode: got %v, want ErrInvalid", err)
	}
	if err := json.Unmarshal([]byte(`42`), &m); !errors.Is(err, ErrInvalid) {
		t.Errorf("non-string JSON mode: got %v, want ErrInvalid", err)
	}
	if _, err := json.Marshal(SchedMode{Kind: SchedMinRegK, K: -1}); err == nil {
		t.Error("marshal of invalid mode succeeded")
	}
}
