package server

import (
	"bytes"
	"encoding/gob"

	"pipesched"
	"pipesched/internal/fleet/store"
)

// diskTier is the crash-safe persistent cache tier under the in-memory
// result LRU: clean optimal results are written through to an
// internal/fleet/store directory (per-entry checksums, atomic
// rename-on-write), and misses in the LRU consult it before compiling.
// A restarted server therefore begins warm — the store's recovery scan
// quarantines anything truncated or corrupt instead of failing startup.
//
// Entries are gob-encoded *pipesched.Compiled values. Only cacheable
// results (clean, optimal, fault-free — see cacheable) ever reach the
// tier, so a decode round-trip reproduces exactly what a fresh compile
// would have produced. An entry that fails to decode is treated as a
// miss and deleted: like the store's own checksum failures, persistent-
// tier corruption degrades to recomputation, never to a wrong answer.
type diskTier struct {
	st  *store.Store
	met *serverMetrics
	rep store.RecoveryReport
}

// openDiskTier opens (or creates) the persistent tier at dir and records
// the recovery outcome in the metric set.
func openDiskTier(dir string, met *serverMetrics) (*diskTier, error) {
	st, rep, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	met.diskRecovered.Add(int64(rep.Recovered))
	met.diskQuarantined.Add(int64(rep.Quarantined))
	met.diskEntries.Set(int64(st.Len()))
	return &diskTier{st: st, met: met, rep: rep}, nil
}

// get decodes the entry for key, if present and well-formed.
func (d *diskTier) get(key string) (*pipesched.Compiled, bool) {
	if d == nil {
		return nil, false
	}
	payload, ok := d.st.Get(key)
	if !ok {
		d.met.diskEntries.Set(int64(d.st.Len())) // may have quarantined on read
		return nil, false
	}
	var c pipesched.Compiled
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&c); err != nil {
		d.st.Delete(key)
		d.met.diskEntries.Set(int64(d.st.Len()))
		return nil, false
	}
	d.met.diskHits.Inc()
	return &c, true
}

// put writes one result through to disk. Encode or write failures are
// dropped: the persistent tier is an optimization, and the in-memory
// tier above it already holds the entry.
func (d *diskTier) put(key string, c *pipesched.Compiled) {
	if d == nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return
	}
	if err := d.st.Put(key, buf.Bytes()); err != nil {
		return
	}
	d.met.diskEntries.Set(int64(d.st.Len()))
}
