package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"pipesched"
)

// canonicalCompiled renders a Compiled for byte comparison: everything
// except the search statistics, which carry wall-clock timings and are
// legitimately run-dependent. Every schedule-bearing field (orders, η,
// pipes, registers, assembly) participates.
func canonicalCompiled(t *testing.T, c *pipesched.Compiled) []byte {
	t.Helper()
	if c == nil {
		t.Fatal("nil Compiled")
	}
	cc := *c
	cc.Stats = pipesched.SearchStats{}
	data, err := json.Marshal(&cc)
	if err != nil {
		t.Fatalf("marshal compiled: %v", err)
	}
	return data
}

// TestCacheMatchesFreshCompile is the cache-correctness property: for
// the same fingerprint, a cache hit must be byte-identical (modulo
// timing stats) to a fresh compilation by an independent server. A
// divergence would mean the fingerprint under-keys the request (two
// different compilations sharing a cache slot) or the pipeline is
// nondeterministic (the cache would then mask real output changes).
func TestCacheMatchesFreshCompile(t *testing.T) {
	reqs := []*Request{
		{ID: "plain", Tuples: tupleBlock(1), Machine: MachineSpec{Preset: "simulation"}},
		{ID: "deep", Tuples: tupleBlock(2), Machine: MachineSpec{Preset: "deep"}},
		{ID: "opts", Tuples: tupleBlock(3), Machine: MachineSpec{Preset: "example"},
			Options: RequestOptions{Registers: 8, AssignPipelines: true}},
		{ID: "source", Source: "a = 1 + 2 * 3\nb = a * a\n", Machine: MachineSpec{Preset: "simulation"},
			Options: RequestOptions{Optimize: true}},
	}

	warm := New(testConfig())
	defer warm.Close()
	fresh := New(testConfig())
	defer fresh.Close()

	clone := func(r *Request, id string) *Request {
		c := *r
		c.ID = id
		return &c
	}

	for _, req := range reqs {
		t.Run(req.ID, func(t *testing.T) {
			ctx := context.Background()
			first, err := warm.Submit(ctx, clone(req, req.ID+"-1"))
			if err != nil || first.Err != nil {
				t.Fatalf("first submit: %v / %v", err, first.Err)
			}
			if first.Cached {
				t.Fatal("first submit reported a cache hit")
			}
			hit, err := warm.Submit(ctx, clone(req, req.ID+"-2"))
			if err != nil || hit.Err != nil {
				t.Fatalf("second submit: %v / %v", err, hit.Err)
			}
			if !hit.Cached {
				t.Fatal("second submit with the same fingerprint missed the cache")
			}
			ref, err := fresh.Submit(ctx, clone(req, req.ID+"-3"))
			if err != nil || ref.Err != nil {
				t.Fatalf("fresh submit: %v / %v", err, ref.Err)
			}
			if ref.Cached {
				t.Fatal("fresh server reported a cache hit")
			}

			got := canonicalCompiled(t, hit.Compiled)
			want := canonicalCompiled(t, ref.Compiled)
			if !bytes.Equal(got, want) {
				t.Errorf("cached result differs from fresh compile\ncached: %s\nfresh:  %s", got, want)
			}
		})
	}
}

// TestCacheKeysOnContent proves distinct fingerprints never share a
// cache entry: requests differing only in block content, machine or
// options must all compile fresh.
func TestCacheKeysOnContent(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ctx := context.Background()

	variants := []*Request{
		{Tuples: tupleBlock(10), Machine: MachineSpec{Preset: "simulation"}},
		{Tuples: tupleBlock(11), Machine: MachineSpec{Preset: "simulation"}},
		{Tuples: tupleBlock(10), Machine: MachineSpec{Preset: "deep"}},
		{Tuples: tupleBlock(10), Machine: MachineSpec{Preset: "simulation"},
			Options: RequestOptions{StrongEquivalence: true}},
	}
	for i, req := range variants {
		req.ID = fmt.Sprintf("variant-%d", i)
		resp, err := s.Submit(ctx, req)
		if err != nil || resp.Err != nil {
			t.Fatalf("variant %d: %v / %v", i, err, resp.Err)
		}
		if resp.Cached {
			t.Errorf("variant %d: distinct fingerprint served from cache", i)
		}
	}
}
