package server

import (
	"sync"

	"pipesched/internal/stats"
	"pipesched/internal/telemetry"
)

// serverMetrics is the service-layer metric set, resolved once against
// the telemetry registry backing the pipeline metrics. With no registry
// (telemetry off) every field stays nil and all updates are no-ops —
// the same nil-by-default discipline as the pipeline itself.
type serverMetrics struct {
	admitted    *telemetry.Counter            // pipesched_server_admitted_total
	completed   *telemetry.Counter            // pipesched_server_completed_total
	shed        map[string]*telemetry.Counter // pipesched_server_shed_total{reason=...}
	queueDepth  *telemetry.Gauge              // pipesched_server_queue_depth
	waitHist    *telemetry.Histogram          // pipesched_server_queue_wait_seconds (µs native)
	retries     *telemetry.Counter            // pipesched_server_retries_total
	cacheHits   *telemetry.Counter            // pipesched_server_cache_hits_total
	cacheMisses *telemetry.Counter            // pipesched_server_cache_misses_total
	dedup       *telemetry.Counter            // pipesched_server_dedup_joined_total
	fastPath    *telemetry.Counter            // pipesched_server_breaker_fastpath_total
	panics      *telemetry.Counter            // pipesched_server_worker_panics_total
	transitions map[string]*telemetry.Counter // pipesched_server_breaker_transitions_total{to=...}
	schedModes  map[string]*telemetry.Counter // pipesched_server_sched_mode_total{mode=...}

	cacheEntries    *telemetry.Gauge   // pipesched_server_cache_entries
	cacheEvictions  *telemetry.Counter // pipesched_server_cache_evictions_total
	diskHits        *telemetry.Counter // pipesched_server_diskcache_hits_total
	diskEntries     *telemetry.Gauge   // pipesched_server_diskcache_entries
	diskRecovered   *telemetry.Counter // pipesched_server_diskcache_recovered_total
	diskQuarantined *telemetry.Counter // pipesched_server_diskcache_quarantined_total
}

// shedReasons and breakerStates pre-register every label value so the
// hot path never touches the registry lock.
var (
	shedReasons   = []string{"full", "deadline", "draining"}
	breakerStates = []string{"open", "half_open", "closed"}
	// schedKinds labels requests by mode family only (the parameters —
	// k, window×width — would make the label set unbounded).
	schedKinds = []string{"paper", "minreg-lex", "minreg-k", "scoreboard"}
)

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	m := &serverMetrics{
		shed:        map[string]*telemetry.Counter{},
		transitions: map[string]*telemetry.Counter{},
		schedModes:  map[string]*telemetry.Counter{},
	}
	if reg == nil {
		return m
	}
	m.admitted = reg.Counter("pipesched_server_admitted_total", "Requests accepted into the work queue.")
	m.completed = reg.Counter("pipesched_server_completed_total", "Requests that terminated (result or typed error).")
	m.queueDepth = reg.Gauge("pipesched_server_queue_depth", "Requests waiting in the bounded queue.")
	m.waitHist = reg.Histogram("pipesched_server_queue_wait_seconds", "Queue wait per executed request.", 1e-6)
	m.retries = reg.Counter("pipesched_server_retries_total", "Transient stage faults retried with backoff.")
	m.cacheHits = reg.Counter("pipesched_server_cache_hits_total", "Requests served from the result cache.")
	m.cacheMisses = reg.Counter("pipesched_server_cache_misses_total", "Requests that missed the result cache.")
	m.dedup = reg.Counter("pipesched_server_dedup_joined_total", "Requests collapsed onto an identical in-flight compilation.")
	m.fastPath = reg.Counter("pipesched_server_breaker_fastpath_total", "Requests served the Heuristic rung because their circuit was open.")
	m.panics = reg.Counter("pipesched_server_worker_panics_total", "Panics caught by the worker's last-resort recover.")
	m.cacheEntries = reg.Gauge("pipesched_server_cache_entries", "Entries resident in the in-memory result LRU.")
	m.cacheEvictions = reg.Counter("pipesched_server_cache_evictions_total", "Result-cache entries evicted by LRU pressure.")
	m.diskHits = reg.Counter("pipesched_server_diskcache_hits_total", "LRU misses served from the persistent cache tier.")
	m.diskEntries = reg.Gauge("pipesched_server_diskcache_entries", "Entries resident in the persistent cache tier.")
	m.diskRecovered = reg.Counter("pipesched_server_diskcache_recovered_total", "Persistent cache entries recovered by the startup scan.")
	m.diskQuarantined = reg.Counter("pipesched_server_diskcache_quarantined_total", "Corrupt or truncated persistent cache entries quarantined.")
	for _, r := range shedReasons {
		m.shed[r] = reg.Counter("pipesched_server_shed_total", "Requests rejected by admission control.", "reason", r)
	}
	for _, st := range breakerStates {
		m.transitions[st] = reg.Counter("pipesched_server_breaker_transitions_total", "Circuit breaker state transitions.", "to", st)
	}
	for _, k := range schedKinds {
		m.schedModes[k] = reg.Counter("pipesched_server_sched_mode_total", "Requests by scheduler mode family.", "mode", k)
	}
	return m
}

// waitWindow keeps a sliding window of recent queue-wait samples and
// answers "what is the p95 wait right now?" for deadline-aware load
// shedding. minSamples guards the cold start: with too few samples the
// estimate is 0 and shedding stays off.
type waitWindow struct {
	mu  sync.Mutex
	buf []float64 // seconds, ring buffer
	n   int       // samples stored (<= len(buf))
	i   int       // next write position
}

const waitWindowSize = 128
const waitWindowMinSamples = 8

func newWaitWindow() *waitWindow {
	return &waitWindow{buf: make([]float64, waitWindowSize)}
}

func (w *waitWindow) observe(seconds float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.i] = seconds
	w.i = (w.i + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// p95 returns the 95th-percentile wait in seconds, or 0 while fewer
// than minSamples samples have been observed.
func (w *waitWindow) p95() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < waitWindowMinSamples {
		return 0
	}
	xs := make([]float64, w.n)
	copy(xs, w.buf[:w.n])
	return stats.Percentile(xs, 95)
}
