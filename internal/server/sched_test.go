package server

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"pipesched"
)

// schedRequest builds a tuple request for block n under a scheduler
// mode given in its textual form.
func schedRequest(n int, sched string) *Request {
	r := tupleRequest(n)
	r.Options.Sched = sched
	return r
}

// TestFingerprintSchedDistinct: the scheduler mode — including its
// parameters — must be part of the content fingerprint, or different
// modes would share cache entries, dedup onto each other, and land on
// the same fleet node as "identical" work.
func TestFingerprintSchedDistinct(t *testing.T) {
	modes := []string{"", "minreg-lex", "minreg-k=2", "minreg-k=3", "scoreboard=1x1", "scoreboard=4x2"}
	seen := map[string]string{}
	for _, mode := range modes {
		fp, err := Fingerprint(schedRequest(1, mode))
		if err != nil {
			t.Fatalf("Fingerprint(%q): %v", mode, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("modes %q and %q share fingerprint %s", prev, mode, fp)
		}
		seen[fp] = mode
	}
	// "paper" is the canonical spelling of the empty mode: same work,
	// same fingerprint.
	fpEmpty, _ := Fingerprint(schedRequest(1, ""))
	fpPaper, err := Fingerprint(schedRequest(1, "paper"))
	if err != nil {
		t.Fatalf("Fingerprint(paper): %v", err)
	}
	if fpEmpty != fpPaper {
		t.Errorf("empty and explicit paper mode fingerprints differ")
	}
}

// TestSubmitBadSched: a malformed sched option is a typed invalid
// request, surfaced through both Submit and Fingerprint.
func TestSubmitBadSched(t *testing.T) {
	s := newTestServer(t, testConfig())
	for _, bad := range []string{"minreg-k=0", "minreg-k=banana", "scoreboard=0x2", "warp"} {
		if _, err := s.Submit(context.Background(), schedRequest(1, bad)); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("Submit(sched=%q) = %v, want ErrInvalidRequest", bad, err)
		}
		if _, err := Fingerprint(schedRequest(1, bad)); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("Fingerprint(sched=%q) = %v, want ErrInvalidRequest", bad, err)
		}
	}
}

// TestSchedModeCachePollution: the same block compiled under different
// modes must produce independent cache entries — a paper result must
// never be served for a pressure-mode request or vice versa — while
// repeats within one mode still hit.
func TestSchedModeCachePollution(t *testing.T) {
	s := newTestServer(t, testConfig())
	ctx := context.Background()

	submit := func(sched string) *Response {
		t.Helper()
		resp, err := s.Submit(ctx, schedRequest(7, sched))
		if err != nil {
			t.Fatalf("Submit(sched=%q): %v", sched, err)
		}
		if resp.Compiled == nil {
			t.Fatalf("Submit(sched=%q): nil result", sched)
		}
		return resp
	}

	paper := submit("")
	if paper.Cached {
		t.Fatal("first paper submit served from cache")
	}

	lex := submit("minreg-lex")
	if lex.Cached {
		t.Fatal("minreg-lex submit polluted by the paper cache entry")
	}
	if lex.Compiled.MaxLive < 1 {
		t.Errorf("minreg-lex result MaxLive = %d, want >= 1", lex.Compiled.MaxLive)
	}
	if lex.Compiled.Sched.String() != "minreg-lex" {
		t.Errorf("minreg-lex result carries mode %s", lex.Compiled.Sched)
	}
	// The lexicographic mode never pays NOPs for pressure: same primary
	// objective as the paper optimum.
	if lex.Compiled.TotalNOPs != paper.Compiled.TotalNOPs {
		t.Errorf("minreg-lex NOPs %d != paper NOPs %d", lex.Compiled.TotalNOPs, paper.Compiled.TotalNOPs)
	}

	sb := submit("scoreboard=4x2")
	if sb.Cached {
		t.Fatal("scoreboard submit polluted by an in-order cache entry")
	}
	if len(sb.Compiled.IssueTicks) == 0 {
		t.Error("scoreboard result carries no issue ticks")
	}

	// Repeats within each mode hit their own entries.
	for _, mode := range []string{"", "minreg-lex", "scoreboard=4x2"} {
		if again := submit(mode); !again.Cached {
			t.Errorf("repeat submit(sched=%q) missed the cache", mode)
		}
	}
	// And the paper entry is still the paper result after the other
	// modes ran.
	if again := submit(""); again.Compiled.MaxLive != paper.Compiled.MaxLive || again.Compiled.TotalNOPs != paper.Compiled.TotalNOPs {
		t.Error("paper cache entry mutated by other-mode traffic")
	}
}

// TestWireRoundTripSched: mode identity, MAXLIVE and scoreboard issue
// ticks must survive the JSON wire shape — the fleet rebuilds Compiled
// results from exactly these bytes.
func TestWireRoundTripSched(t *testing.T) {
	s := newTestServer(t, testConfig())
	ctx := context.Background()
	for _, sched := range []string{"minreg-k=3", "scoreboard=4x2"} {
		resp, err := s.Submit(ctx, schedRequest(9, sched))
		if err != nil {
			t.Fatalf("Submit(%q): %v", sched, err)
		}
		w := ToWire("rt", resp, nil)
		w.AttachSchedule(resp)
		raw, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back WireResponse
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		mode, err := pipesched.ParseSchedMode(back.Sched)
		if err != nil {
			t.Fatalf("wire sched %q: %v", back.Sched, err)
		}
		if mode != resp.Compiled.Sched {
			t.Errorf("%q: wire mode %s != compiled mode %s", sched, mode, resp.Compiled.Sched)
		}
		if back.MaxLive != resp.Compiled.MaxLive {
			t.Errorf("%q: wire MaxLive %d != %d", sched, back.MaxLive, resp.Compiled.MaxLive)
		}
		if back.Schedule == nil {
			t.Fatalf("%q: no wire schedule", sched)
		}
		if got, want := len(back.Schedule.IssueTicks), len(resp.Compiled.IssueTicks); got != want {
			t.Errorf("%q: wire issue ticks %d != %d", sched, got, want)
		}
	}
}
