package server

import (
	"container/list"
	"sync"

	"pipesched"
	"pipesched/internal/telemetry"
)

// cache is a mutex-guarded LRU of finished compilations, keyed by the
// content fingerprint. Only clean optimal results are stored (see
// cacheable): compilation is deterministic on those, so a hit is
// byte-identical to a fresh run. Cached *Compiled values are shared
// between callers and must be treated as immutable.
type cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	// occupancy / evictions are exported as telemetry (nil-safe, so a
	// metrics-less cache pays two no-op calls per put).
	occupancy *telemetry.Gauge
	evictions *telemetry.Counter
}

type cacheEntry struct {
	key string
	c   *pipesched.Compiled
}

// newCache returns an LRU holding at most max entries; max <= 0
// disables caching (every get misses, every put drops). occupancy and
// evictions, when non-nil, track the live entry count and cumulative
// LRU evictions.
func newCache(max int, occupancy *telemetry.Gauge, evictions *telemetry.Counter) *cache {
	return &cache{
		max: max, ll: list.New(), items: map[string]*list.Element{},
		occupancy: occupancy, evictions: evictions,
	}
}

func (c *cache) get(key string) (*pipesched.Compiled, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).c, true
}

func (c *cache) put(key string, v *pipesched.Compiled) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).c = v
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, c: v})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.occupancy.Set(int64(c.ll.Len()))
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheable reports whether a finished response may enter the cache:
// a clean, provably optimal schedule with no isolated stage faults.
// Degraded results are never cached — a later attempt (after a breaker
// recovery, or without an injected fault) may do better.
func cacheable(r *Response) bool {
	return r.Err == nil && r.Compiled != nil &&
		r.Compiled.Quality == pipesched.Optimal && len(r.Compiled.Faults) == 0
}
