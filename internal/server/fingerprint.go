package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"pipesched"
)

// fingerprint content-addresses one unit of compilation work: the block
// (source or tuple text), the machine (its canonical table rendering —
// two structurally identical machines hash alike regardless of how they
// were specified), and every option that can change the emitted
// schedule. It keys both the result cache / singleflight dedup and the
// circuit breaker, so "the same block on the same machine" collapses to
// one search and accumulates one failure history.
func fingerprint(source, tuples string, m *pipesched.Machine, o pipesched.Options) string {
	h := sha256.New()
	io.WriteString(h, "src\x00")
	io.WriteString(h, source)
	io.WriteString(h, "\x00tuples\x00")
	io.WriteString(h, tuples)
	io.WriteString(h, "\x00machine\x00")
	io.WriteString(h, m.String())
	fmt.Fprintf(h, "\x00opts\x00%d|%t|%t|%d|%d|%t|%t|%t|%s",
		o.Lambda, o.Optimize, o.Reassociate, o.Registers, o.Mode,
		o.ExplainNOPs, o.AssignPipelines, o.StrongEquivalence,
		o.Sched.String())
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint resolves a wire request's machine and options and returns
// its content fingerprint — the same key a Server uses for its cache,
// singleflight and circuit breaker. The fleet router consistent-hashes
// it onto the node ring, so identical work from different front doors
// lands on (and dedups at) the same backend. Invalid requests return
// the same typed errors Submit would.
func Fingerprint(req *Request) (string, error) {
	if req == nil {
		return "", fmt.Errorf("%w: nil request", ErrInvalidRequest)
	}
	if (req.Source == "") == (req.Tuples == "") {
		return "", fmt.Errorf("%w: exactly one of source or tuples must be set", ErrInvalidRequest)
	}
	m, err := resolveMachine(req.Machine)
	if err != nil {
		return "", err
	}
	o, err := resolveOptions(req.Options)
	if err != nil {
		return "", err
	}
	return fingerprint(req.Source, req.Tuples, m, o), nil
}
