package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pipesched"
	"pipesched/internal/dag"
	"pipesched/internal/faultinject"
	"pipesched/internal/machine"
	"pipesched/internal/sim"
)

// TestSoakChaos is the delivery-guarantee acceptance test: with faults
// injected at every pipeline stage (probabilistic and deterministic-Nth),
// plus caller cancellations and invalid requests mixed in, EVERY
// accepted request must terminate — with a schedule the independent
// simulator verifies legal, a typed error, or both. No hangs, no
// silent drops, no untyped errors.
func TestSoakChaos(t *testing.T) {
	inj := faultinject.New().Seed(42).
		Plan(faultinject.Search, faultinject.Plan{Err: errors.New("chaos: search fault"), Prob: 0.2}).
		Plan(faultinject.Regalloc, faultinject.Plan{PanicValue: "chaos: regalloc panic", Prob: 0.1}).
		Plan(faultinject.DAG, faultinject.Plan{Err: errors.New("chaos: dag fault"), Prob: 0.05}).
		Plan(faultinject.Codegen, faultinject.Plan{Err: errors.New("chaos: codegen fault"), Nth: 7})
	defer faultinject.Activate(inj)()

	s := New(Config{
		Workers:          4,
		QueueDepth:       8,
		DefaultTimeout:   time.Second,
		MaxRetries:       2,
		RetryBase:        time.Millisecond,
		RetryMax:         2 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		CacheEntries:     32,
	})

	const clients = 8
	perClient := 40
	if testing.Short() {
		perClient = 15
	}
	type outcome struct {
		resp *Response
		err  error
	}
	results := make(chan outcome, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c + 1)))
			for i := 0; i < perClient; i++ {
				var req *Request
				switch rng.Intn(10) {
				case 0: // invalid: typed rejection path
					req = &Request{Machine: MachineSpec{Preset: "simulation"}}
				case 1: // source input: exercises the frontend
					req = &Request{
						Source:  fmt.Sprintf("b = %d\na = b * a\n", rng.Intn(50)),
						Machine: MachineSpec{Preset: "simulation"},
					}
				default: // tuple input over a handful of keys: dedup + cache
					req = tupleRequest(rng.Intn(6))
				}
				ctx, cancel := context.Background(), context.CancelFunc(func() {})
				if rng.Intn(5) == 0 { // caller-side chaos: tiny deadlines
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				}
				resp, err := s.Submit(ctx, req)
				cancel()
				results <- outcome{resp, err}
			}
		}(c)
	}

	// The watchdog IS the assertion that nothing hangs.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("soak hung: not every request terminated")
	}
	close(results)

	m := machine.Presets()["simulation"]()
	verified, hard := 0, 0
	typed := map[string]int{}
	for o := range results {
		if o.err != nil {
			code := ErrorCode(o.err)
			if code == "error" {
				t.Fatalf("untyped error escaped the taxonomy: %v", o.err)
			}
			typed[code]++
		}
		if o.resp == nil || o.resp.Compiled == nil {
			if o.err == nil {
				t.Fatal("silent drop: no result and no error")
			}
			hard++
			continue
		}
		// Independent legality re-verification of every delivered
		// schedule, whatever rung it landed on.
		c := o.resp.Compiled
		g, err := dag.Build(c.Original)
		if err != nil {
			t.Fatalf("verification DAG build failed: %v", err)
		}
		if _, err := sim.Run(sim.Input{
			Graph: g, M: m, Order: c.Order, Eta: c.Eta, Pipes: c.Pipes,
		}, sim.NOPPadding); err != nil {
			t.Fatalf("delivered schedule (quality %v) failed simulation: %v", c.Quality, err)
		}
		verified++
	}
	t.Logf("soak: %d schedules sim-verified, %d hard failures, typed errors %v, codegen Nth fired %d/%d crossings",
		verified, hard, typed, inj.Fired(faultinject.Codegen), inj.Crossings(faultinject.Codegen))
	if verified == 0 {
		t.Fatal("soak produced no verifiable schedules")
	}
	if inj.Fired(faultinject.Codegen) != 1 {
		t.Errorf("deterministic Nth plan fired %d times, want exactly 1", inj.Fired(faultinject.Codegen))
	}

	// A clean drain must succeed with nothing left in flight.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("post-soak drain: %v", err)
	}
}

// TestSoakBreakerTripAndRecover proves the breaker arc end to end under
// concurrent load: forced budget blowouts trip the key's circuit (fast-
// path Heuristic responses appear), and once the fault clears, the
// half-open probe restores full searches.
func TestSoakBreakerTripAndRecover(t *testing.T) {
	cfg := testConfig()
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 50 * time.Millisecond
	cfg.CacheEntries = -1
	s := newTestServer(t, cfg)
	req := &Request{Tuples: chainTuples(8), Machine: MachineSpec{Preset: "simulation"}}
	key := fingerprintOfRequest(t, s, req)

	restore := faultinject.Activate(faultinject.New().
		Plan(faultinject.Search, faultinject.Plan{CurtailLambda: 1}))
	for i := 0; i < cfg.BreakerThreshold; i++ {
		if _, err := s.Submit(context.Background(), req); !errors.Is(err, pipesched.ErrCurtailed) {
			t.Fatalf("trip %d: err = %v, want ErrCurtailed", i, err)
		}
	}
	if st := s.breaker.stateOf(key); st != stateOpen {
		t.Fatalf("breaker state = %v, want open after %d blowouts", st, cfg.BreakerThreshold)
	}

	// Open circuit under concurrent load: every request is answered
	// from the fast path, degraded but legal and error-free.
	var wg sync.WaitGroup
	var fastMu sync.Mutex
	fast := 0
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), req)
			if err != nil || resp.Compiled == nil {
				t.Errorf("open circuit: resp=%v err=%v", resp, err)
				return
			}
			if resp.FastPath && resp.Compiled.Quality == pipesched.Heuristic {
				fastMu.Lock()
				fast++
				fastMu.Unlock()
			}
		}()
	}
	wg.Wait()
	if fast == 0 {
		t.Fatal("no fast-path responses while the circuit was open")
	}
	restore()

	// Fault cleared: after the cooldown the probe's full search succeeds
	// and the circuit closes again.
	time.Sleep(cfg.BreakerCooldown + 10*time.Millisecond)
	resp, err := s.Submit(context.Background(), req)
	if err != nil || resp.FastPath || resp.Compiled.Quality != pipesched.Optimal {
		t.Fatalf("probe: resp=%+v err=%v, want full optimal search", resp, err)
	}
	if st := s.breaker.stateOf(key); st != stateClosed {
		t.Fatalf("breaker state = %v, want closed after recovery", st)
	}
}
