package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"pipesched"
	"pipesched/internal/telemetry"
)

// maxBodyBytes bounds one request body; oversized bodies are a typed
// 400, not an OOM.
const maxBodyBytes = 4 << 20

// WireResponse is the JSON shape of one compiled block on the wire.
type WireResponse struct {
	ID       string `json:"id,omitempty"`
	Assembly string `json:"assembly,omitempty"`
	Quality  string `json:"quality,omitempty"`
	NOPs     int    `json:"nops"`
	Ticks    int    `json:"ticks"`
	Optimal  bool   `json:"optimal"`
	// Gap is the certified optimality gap (NOPs above the admissible
	// root lower bound): 0 = provably optimal, > 0 = provably within
	// Gap NOPs of optimal, -1 = no certificate on this rung.
	Gap    int `json:"gap"`
	RootLB int `json:"root_lb,omitempty"`
	// Sched echoes the scheduler mode the result was produced under in
	// its canonical textual form; omitted for the paper mode. MaxLive is
	// the schedule's peak register pressure, filled by the
	// register-pressure modes.
	Sched    string `json:"sched,omitempty"`
	MaxLive  int    `json:"max_live,omitempty"`
	Degraded bool   `json:"degraded,omitempty"` // legal result + typed reason in error
	Cached   bool   `json:"cached,omitempty"`
	DiskHit  bool   `json:"disk_hit,omitempty"`
	Deduped  bool   `json:"deduped,omitempty"`
	FastPath bool   `json:"fast_path,omitempty"`
	Retries  int    `json:"retries,omitempty"`
	// Schedule is the machine-readable schedule, attached only when the
	// request set WireSchedule (the fleet's remote transport does).
	Schedule *WireSchedule `json:"schedule,omitempty"`
	Error    *WireError    `json:"error,omitempty"`
}

// WireSchedule carries the schedule itself — not just its cost — so the
// receiving side can rebuild a pipesched.Compiled and sim-verify it.
// Tuples is the post-optimize block in the textual tuple format
// (ir.ParseBlock round-trips it); Order/Eta/Pipes index into it exactly
// as in Compiled.
type WireSchedule struct {
	Tuples string `json:"tuples"`
	Order  []int  `json:"order"`
	Eta    []int  `json:"eta"`
	Pipes  []int  `json:"pipes"`
	// IssueTicks is the scoreboard model's per-position issue tick,
	// present only for scoreboard-mode results (Eta is all zeros there).
	IssueTicks []int `json:"issue_ticks,omitempty"`
}

// AttachSchedule copies resp's schedule onto the wire response when the
// compiled result carries one. InitialNOPs rides along so the rebuilt
// Compiled reports the same seed cost.
func (w *WireResponse) AttachSchedule(resp *Response) {
	if w == nil || resp == nil || resp.Compiled == nil || resp.Compiled.Original == nil {
		return
	}
	c := resp.Compiled
	w.Schedule = &WireSchedule{
		Tuples:     c.Original.String(),
		Order:      c.Order,
		Eta:        c.Eta,
		Pipes:      c.Pipes,
		IssueTicks: c.IssueTicks,
	}
}

// CompiledFromWire rebuilds a sim-verifiable pipesched.Compiled from a
// wire response's schedule payload — the inverse of AttachSchedule +
// ToWire. It returns nil (no error) when the response carries no
// schedule (rejections, legacy peers). Both the fleet's remote-node
// transport and the campaign runner's HTTP front-door client rebuild
// answers through this one decoder, so any drift in the wire shape
// breaks both loudly.
func CompiledFromWire(wire *WireResponse) (*pipesched.Compiled, error) {
	s := wire.Schedule
	if s == nil {
		return nil, nil
	}
	blk, err := pipesched.ParseBlock(s.Tuples)
	if err != nil {
		return nil, fmt.Errorf("wire schedule tuples: %w", err)
	}
	q, err := pipesched.ParseQuality(wire.Quality)
	if err != nil {
		return nil, fmt.Errorf("wire schedule: %w", err)
	}
	sched, err := pipesched.ParseSchedMode(wire.Sched)
	if err != nil {
		return nil, fmt.Errorf("wire schedule: %w", err)
	}
	return &pipesched.Compiled{
		Original:   blk,
		Order:      s.Order,
		Eta:        s.Eta,
		Pipes:      s.Pipes,
		TotalNOPs:  wire.NOPs,
		Ticks:      wire.Ticks,
		Optimal:    wire.Optimal,
		Gap:        wire.Gap,
		RootLB:     wire.RootLB,
		Quality:    q,
		Assembly:   wire.Assembly,
		Sched:      sched,
		MaxLive:    wire.MaxLive,
		IssueTicks: s.IssueTicks,
	}, nil
}

// WireError is the JSON shape of a typed failure. TraceID joins a
// failed request to its distributed trace (JSONL sink records and
// flight-recorder dumps carry the same ID).
type WireError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	TraceID      string `json:"trace_id,omitempty"`
}

// wireBatch is the batch request/response envelope.
type wireBatch struct {
	Requests []*Request `json:"requests"`
}

type wireBatchResponse struct {
	Responses []*WireResponse `json:"responses"`
}

// ToWire flattens a Submit outcome into the wire shape.
func ToWire(id string, resp *Response, err error) *WireResponse {
	w := &WireResponse{ID: id}
	if resp != nil {
		w.Cached = resp.Cached
		w.DiskHit = resp.DiskHit
		w.Deduped = resp.Deduped
		w.FastPath = resp.FastPath
		w.Retries = resp.Retries
		if id == "" {
			w.ID = resp.ID
		}
		if c := resp.Compiled; c != nil {
			w.Assembly = c.Assembly
			w.Quality = c.Quality.String()
			w.NOPs = c.TotalNOPs
			w.Ticks = c.Ticks
			w.Optimal = c.Optimal
			w.Gap = c.Gap
			w.RootLB = c.RootLB
			w.MaxLive = c.MaxLive
			if !c.Sched.IsPaper() {
				w.Sched = c.Sched.String()
			}
		}
		if err == nil {
			err = resp.Err
		}
	}
	if err != nil {
		w.Error = &WireError{Code: ErrorCode(err), Message: err.Error()}
		var oe *OverloadError
		if errors.As(err, &oe) {
			w.Error.RetryAfterMS = oe.RetryAfter.Milliseconds()
		}
		w.Degraded = resp != nil && resp.Compiled != nil
	}
	return w
}

// HTTPStatus maps one outcome onto an HTTP status for the single-
// request endpoint. Degraded-but-legal results are 200: the caller got
// a schedule; the error field explains the rung.
func HTTPStatus(resp *Response, err error) int {
	if err == nil || (resp != nil && resp.Compiled != nil) {
		return http.StatusOK
	}
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrInvalidRequest),
		errors.Is(err, pipesched.ErrInvalidMachine),
		errors.Is(err, pipesched.ErrInvalidBlock):
		return http.StatusBadRequest
	case errors.Is(err, pipesched.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, pipesched.ErrCanceled):
		return 499 // client closed request (nginx convention)
	}
	return http.StatusInternalServerError
}

// Handler returns the service's HTTP API:
//
//	POST /compile   one request object, or {"requests": [...]} for a batch
//	GET  /healthz   "ok", or 503 "draining" once shutdown has begun
//
// When the server was built with telemetry (Config.Metrics), the
// introspection endpoints (/metrics, /debug/vars, /debug/pprof/) are
// mounted too. Batch responses are always 200 with per-item errors;
// the single-request form maps its one outcome onto the HTTP status
// (503 + Retry-After on overload/drain, 400 on invalid input).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	if reg := s.cfg.Metrics.Registry(); reg != nil {
		mux.Handle("/", telemetry.Handler(reg))
	}
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, ok := ReadBody(w, r)
	if !ok {
		return
	}
	reqs, batch, err := DecodeCompileBody(body)
	if err != nil {
		WriteJSONError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	ctx := r.Context()
	var traceID string
	if tr := telemetry.ActiveTracer(); tr != nil {
		// A request arriving with X-Pipesched-Trace (from the fleet
		// router, or a traced client) joins that trace; otherwise this
		// hop is the front door and mints one.
		parent, _ := telemetry.ExtractTrace(r.Header)
		name := "front_door"
		if parent.Valid() {
			name = "server.http"
		}
		var root *telemetry.TraceSpan
		ctx, root = tr.StartRoot(ctx, name, parent)
		if s.cfg.Node != "" {
			root.SetNode(s.cfg.Node)
		}
		traceID = root.Context().TraceID
		w.Header().Set(telemetry.TraceHeader, root.Context().String())
		defer root.End()
	}
	if batch {
		s.serveBatch(ctx, w, reqs, traceID)
		return
	}
	req := reqs[0]
	resp, serr := s.Submit(ctx, req)
	wire := ToWire(req.ID, resp, serr)
	if req.WireSchedule {
		wire.AttachSchedule(resp)
	}
	WriteWireOutcome(w, wire, resp, serr, traceID)
}

// WriteOutcome renders one single-request outcome: status from
// HTTPStatus, Retry-After on overload, wire JSON body. Shared with the
// fleet front door.
func WriteOutcome(w http.ResponseWriter, id string, resp *Response, serr error) {
	WriteTracedOutcome(w, id, resp, serr, "")
}

// WriteTracedOutcome is WriteOutcome for a traced request: the trace ID
// is stamped on the wire error, and a typed 5xx outcome triggers a
// flight-recorder dump so the black box captures the spans that led to
// it.
func WriteTracedOutcome(w http.ResponseWriter, id string, resp *Response, serr error, traceID string) {
	WriteWireOutcome(w, ToWire(id, resp, serr), resp, serr, traceID)
}

// WriteWireOutcome renders an already-built wire response with the
// status, Retry-After and flight-recorder behavior of
// WriteTracedOutcome; callers use it when the wire body needs
// per-request decoration (e.g. AttachSchedule) first.
func WriteWireOutcome(w http.ResponseWriter, wire *WireResponse, resp *Response, serr error, traceID string) {
	status := HTTPStatus(resp, serr)
	var oe *OverloadError
	if errors.As(serr, &oe) {
		w.Header().Set("Retry-After", strconv.FormatInt(int64(oe.RetryAfter.Seconds()+0.999), 10))
	}
	if status >= 500 {
		telemetry.ActiveTracer().Trigger(fmt.Sprintf("http_%d", status))
	}
	wire.StampTrace(traceID)
	WriteJSON(w, status, wire)
}

// StampTrace records the request's trace ID on the wire error, if any.
func (w *WireResponse) StampTrace(traceID string) {
	if w != nil && w.Error != nil && traceID != "" {
		w.Error.TraceID = traceID
	}
}

// ReadBody reads one bounded request body, answering the appropriate
// error status itself; ok reports whether the caller should proceed.
func ReadBody(w http.ResponseWriter, r *http.Request) (body []byte, ok bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if len(body) > maxBodyBytes {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return nil, false
	}
	return body, true
}

// DecodeCompileBody parses one /compile body: a body with a "requests"
// array is a batch (batch = true, one element per item, nils preserved);
// anything else is a single request object (reqs has exactly one
// element). The error is user-caused and maps to a 400.
func DecodeCompileBody(body []byte) (reqs []*Request, batch bool, err error) {
	var probe struct {
		Requests json.RawMessage `json:"requests"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return nil, false, fmt.Errorf("malformed JSON: %w", err)
	}
	if probe.Requests != nil {
		var b wireBatch
		if err := json.Unmarshal(body, &b); err != nil {
			return nil, false, fmt.Errorf("malformed batch: %w", err)
		}
		return b.Requests, true, nil
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, false, fmt.Errorf("malformed request: %w", err)
	}
	return []*Request{&req}, false, nil
}

// serveBatch fans the batch out through Submit concurrently — each
// request passes admission control individually, so a batch cannot
// bypass the queue bound — and answers 200 with per-item outcomes.
func (s *Server) serveBatch(ctx context.Context, w http.ResponseWriter, reqs []*Request, traceID string) {
	out := wireBatchResponse{Responses: make([]*WireResponse, len(reqs))}
	var wg sync.WaitGroup
	for i, req := range reqs {
		if req == nil {
			out.Responses[i] = &WireResponse{Error: &WireError{Code: "invalid_request", Message: "null request"}}
			continue
		}
		wg.Add(1)
		go func(i int, req *Request) {
			defer wg.Done()
			resp, err := s.Submit(ctx, req)
			out.Responses[i] = ToWire(req.ID, resp, err)
			if req.WireSchedule {
				out.Responses[i].AttachSchedule(resp)
			}
			out.Responses[i].StampTrace(traceID)
		}(i, req)
	}
	wg.Wait()
	WriteJSON(w, http.StatusOK, out)
}

func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func WriteJSONError(w http.ResponseWriter, status int, code, msg string) {
	WriteJSON(w, status, &WireResponse{Error: &WireError{Code: code, Message: msg}})
}
