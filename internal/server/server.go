// Package server is the compilation service layer: it wraps the
// pipesched anytime pipeline in the robustness machinery a long-running,
// heavily-loaded deployment needs, with one contract: every ACCEPTED
// request terminates with a legal schedule, a typed error, or both —
// never a hang, never a silent drop.
//
// The pieces, in request order:
//
//   - Admission control over a bounded queue: a full queue rejects
//     immediately with ErrOverloaded, and deadline-aware load shedding
//     rejects requests whose compile budget cannot cover the observed
//     p95 queue wait (queueing them could only waste capacity).
//   - Singleflight dedup + a content-addressed LRU result cache:
//     concurrent identical (block, machine, options) requests collapse
//     into one search; clean optimal results are reused outright.
//   - A worker pool with per-request panic isolation and
//     retry-with-backoff+jitter for transient *StageError faults
//     (permanent failures — invalid input, frontend errors — are never
//     retried).
//   - A circuit breaker keyed by block×machine fingerprint: keys whose
//     searches repeatedly blow their budget (λ or deadline) skip
//     straight to the Heuristic rung until a half-open probe proves the
//     search affordable again.
//   - Graceful drain: Shutdown stops admission, lets in-flight work
//     finish (or degrades it to best incumbents when the drain deadline
//     expires), and leaves every waiter answered.
//
// Everything is instrumented through internal/telemetry and
// chaos-proven by the soak test under internal/faultinject.
package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"pipesched"
	"pipesched/internal/fleet/store"
	"pipesched/internal/machine"
	"pipesched/internal/telemetry"
)

// Config tunes one Server. The zero value is usable: every field has a
// production-leaning default, applied by New.
type Config struct {
	// Workers is the worker-pool size; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the work queue; default 64.
	QueueDepth int
	// DefaultTimeout is the per-request compile budget (queue wait +
	// compilation) when the request carries none; default 2s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested budget; default 30s.
	MaxTimeout time.Duration
	// MaxRetries bounds retry attempts for transient stage faults;
	// default 2 (three attempts total). Negative disables retries.
	MaxRetries int
	// RetryBase is the first backoff delay; default 10ms. Successive
	// delays double up to RetryMax (default 250ms), each with up to 50%
	// random jitter.
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold is how many consecutive budget failures open a
	// key's circuit; default 3. Negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before the
	// half-open probe; default 5s.
	BreakerCooldown time.Duration
	// CacheEntries sizes the result LRU; default 1024. Negative
	// disables caching.
	CacheEntries int
	// CacheDir, when set, adds a crash-safe persistent cache tier under
	// the in-memory LRU (see diskcache.go): clean optimal results are
	// written through with per-entry checksums and atomic renames, and a
	// restarted server recovers them on startup — corrupt entries are
	// quarantined, never a startup failure. Empty disables the tier.
	CacheDir string
	// Metrics wires the server into a telemetry metric set (usually the
	// one from pipesched.EnableTelemetry()). Nil leaves service metrics
	// off; the pipeline's own nil-by-default telemetry is unaffected
	// either way.
	Metrics *pipesched.Telemetry
	// Node names this server in distributed-trace spans and the /fleet
	// status — set by the fleet layer; "" for a standalone server.
	Node string

	// now is the clock (swapped by tests); default time.Now.
	now func() time.Time
}

const breakerMaxEntries = 4096

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Request is one unit of compilation work. Exactly one of Source
// (single-block source text, compiled through the frontend) or Tuples
// (tuple code in the paper's Figure 3 form) must be set.
type Request struct {
	ID      string         `json:"id,omitempty"`
	Source  string         `json:"source,omitempty"`
	Tuples  string         `json:"tuples,omitempty"`
	Machine MachineSpec    `json:"machine"`
	Options RequestOptions `json:"options"`
	// TimeoutMS is the compile budget in milliseconds (queue wait
	// included); 0 selects the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// WireSchedule asks the HTTP layer to attach the full schedule
	// (tuples, order, eta, pipes) to the wire response, so a routing
	// tier can reconstruct a verifiable Compiled from the JSON alone.
	// The fleet's RemoteNode sets it on every forwarded request. It is
	// a transport concern and deliberately outside the cache
	// fingerprint.
	WireSchedule bool `json:"wire_schedule,omitempty"`
}

// MachineSpec selects the target machine: a named preset or an inline
// description in the textual table format. Preset wins when both are
// set.
type MachineSpec struct {
	Preset string `json:"preset,omitempty"`
	Text   string `json:"text,omitempty"`
}

// RequestOptions is the JSON-facing subset of pipesched.Options a
// service request may set. Search tracing and parallel workers are
// deliberately absent: traces are a debugging tool, and per-request
// worker fan-out would let one request oversubscribe the pool.
type RequestOptions struct {
	Lambda            int64  `json:"lambda,omitempty"`
	Optimize          bool   `json:"optimize,omitempty"`
	Reassociate       bool   `json:"reassociate,omitempty"`
	Registers         int    `json:"registers,omitempty"`
	Mode              string `json:"mode,omitempty"` // nop|explicit|implicit|tera
	ExplainNOPs       bool   `json:"explain_nops,omitempty"`
	AssignPipelines   bool   `json:"assign_pipelines,omitempty"`
	StrongEquivalence bool   `json:"strong_equivalence,omitempty"`
	// Sched selects the scheduler mode in ParseSchedMode's textual form:
	// "paper" (or empty), "minreg-lex", "minreg-k=<k>", or
	// "scoreboard[=<window>x<width>]". It is part of the request
	// fingerprint, so different modes never share cache entries.
	Sched string `json:"sched,omitempty"`
}

// Response is the outcome of one Submit. Compiled and Err follow the
// pipeline's anytime contract: both may be set at once (a degraded but
// legal result travels with its typed reason); Compiled == nil means
// hard failure, Err == nil means a clean result. A shared (deduped or
// cached) Compiled must be treated as immutable.
type Response struct {
	ID       string
	Compiled *pipesched.Compiled
	Err      error
	Cached   bool          // served from the result cache (either tier)
	DiskHit  bool          // the cache hit came from the persistent tier
	Deduped  bool          // collapsed onto an identical in-flight request
	FastPath bool          // breaker open: Heuristic rung, no search
	Retries  int           // transient-fault retry attempts spent
	Wait     time.Duration // time spent queued before a worker picked it up
}

// flight is one in-flight unit of (deduplicated) work: the leader's
// request plus every waiter that collapsed onto it.
type flight struct {
	key      string
	source   string
	tuples   string
	block    *pipesched.Block // pre-parsed tuple block, when Tuples input
	m        *pipesched.Machine
	opts     pipesched.Options
	enqueued time.Time
	ctx      context.Context
	cancel   context.CancelFunc
	refs     int // waiters, guarded by Server.mu; 0 → nobody cares, cancel
	done     chan struct{}
	resp     *Response // set before done closes; shared, read-only

	// Distributed-trace linkage: the LEADER's trace context (children —
	// queue wait, breaker decision, compile attempts — parent under it)
	// and the queue-wait span opened at enqueue, ended by the worker.
	tc    telemetry.TraceContext
	qspan *telemetry.TraceSpan
}

// Server is the compile service. Create with New, submit with Submit
// (or serve HTTP with Handler), stop with Shutdown/Close.
type Server struct {
	cfg     Config
	met     *serverMetrics
	breaker *breaker
	cache   *cache
	disk    *diskTier // nil without Config.CacheDir
	diskErr error     // persistent tier unavailable; serving memory-only
	waits   *waitWindow

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	draining bool
	flights  map[string]*flight
	jobs     chan *flight

	wg sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New starts a Server with cfg's worker pool running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		waits:   newWaitWindow(),
		flights: map[string]*flight{},
		jobs:    make(chan *flight, cfg.QueueDepth),
		rng:     rand.New(rand.NewSource(cfg.now().UnixNano())),
	}
	s.met = newServerMetrics(cfg.Metrics.Registry())
	s.cache = newCache(cfg.CacheEntries, s.met.cacheEntries, s.met.cacheEvictions)
	if cfg.CacheDir != "" && cfg.CacheEntries > 0 {
		// An unopenable tier degrades to memory-only service; the store's
		// own recovery scan never fails, so diskErr means a real I/O
		// problem with the directory itself.
		s.disk, s.diskErr = openDiskTier(cfg.CacheDir, s.met)
	}
	s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, breakerMaxEntries, cfg.now,
		func(to string) { s.met.transitions[to].Inc() })
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit runs one request to completion: validation, admission, dedup,
// cache, queue, breaker, retries. It blocks until the request
// terminates or ctx ends (abandoning the shared flight, which keeps
// running while other waiters remain). A request that executed returns
// a non-nil Response — possibly carrying a degraded-but-legal Compiled
// WITH a typed error (anytime semantics), possibly a nil Compiled when
// the failure was hard — so Wait/Retries metadata survives either way.
// A nil Response means the request never executed: rejected by
// validation or admission control, or abandoned by the caller.
func (s *Server) Submit(ctx context.Context, req *Request) (*Response, error) {
	ctx, sp := telemetry.ActiveTracer().StartSpan(ctx, "server.submit")
	if sp != nil && s.cfg.Node != "" {
		sp.SetNode(s.cfg.Node)
	}
	resp, err := s.submit(ctx, req)
	if sp != nil {
		annotateSubmit(sp, resp)
		sp.Fail(err)
		sp.End()
	}
	return resp, err
}

// annotateSubmit records the request's service-level outcome on its
// server.submit span.
func annotateSubmit(sp *telemetry.TraceSpan, resp *Response) {
	if resp == nil {
		return
	}
	switch {
	case resp.DiskHit:
		sp.SetAttr("cache", "disk")
	case resp.Cached:
		sp.SetAttr("cache", "memory")
	}
	if resp.Deduped {
		sp.SetAttr("deduped", "true")
	}
	if resp.FastPath {
		sp.SetAttr("fast_path", "true")
	}
	if resp.Retries > 0 {
		sp.SetAttr("retries", strconv.Itoa(resp.Retries))
	}
	if resp.Compiled != nil {
		sp.SetAttr("rung", resp.Compiled.Quality.String())
		if !resp.Compiled.Sched.IsPaper() {
			sp.SetAttr("sched", resp.Compiled.Sched.String())
		}
	}
}

// submit is Submit's body, running under the server.submit span when
// the request is traced.
func (s *Server) submit(ctx context.Context, req *Request) (*Response, error) {
	proto, timeout, err := s.prepare(req)
	if err != nil {
		return nil, err
	}
	s.met.schedModes[proto.opts.Sched.Kind.String()].Inc()
	for attempt := 0; ; attempt++ {
		f, joined, cached, err := s.admit(ctx, proto, timeout)
		if err != nil {
			return nil, err
		}
		if cached != nil {
			cached.ID = req.ID
			return cached, nil
		}
		resp := s.await(ctx, f, joined)
		if resp == nil { // caller gave up waiting
			s.leave(f)
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, fmt.Errorf("%w: caller deadline expired while waiting", pipesched.ErrDeadline)
			}
			return nil, fmt.Errorf("%w: caller abandoned request", pipesched.ErrCanceled)
		}
		// If we piggybacked on a flight whose leader abandoned it while
		// it was still queued, the shared outcome is the LEADER's
		// cancellation, not ours — re-admit once instead of surfacing it.
		if joined && attempt < 2 && ctx.Err() == nil &&
			resp.Compiled == nil && errors.Is(resp.Err, pipesched.ErrCanceled) {
			continue
		}
		resp.ID = req.ID
		return resp, resp.Err
	}
}

// prepare validates and normalizes req into a prototype flight.
func (s *Server) prepare(req *Request) (*flight, time.Duration, error) {
	if req == nil {
		return nil, 0, fmt.Errorf("%w: nil request", ErrInvalidRequest)
	}
	if (req.Source == "") == (req.Tuples == "") {
		return nil, 0, fmt.Errorf("%w: exactly one of source or tuples must be set", ErrInvalidRequest)
	}
	m, err := resolveMachine(req.Machine)
	if err != nil {
		return nil, 0, err
	}
	opts, err := resolveOptions(req.Options)
	if err != nil {
		return nil, 0, err
	}
	var block *pipesched.Block
	if req.Tuples != "" {
		block, err = pipesched.ParseBlock(req.Tuples)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %w", ErrInvalidRequest, err)
		}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	key := fingerprint(req.Source, req.Tuples, m, opts)
	return &flight{key: key, source: req.Source, tuples: req.Tuples, block: block, m: m, opts: opts}, timeout, nil
}

// admit applies admission control: cache lookup, singleflight join,
// deadline-aware shedding, bounded enqueue. Exactly one of (f, cached,
// err) paths results: a flight to await (joined reports whether it was
// already in flight), a cache hit, or a typed rejection.
func (s *Server) admit(ctx context.Context, proto *flight, timeout time.Duration) (f *flight, joined bool, cached *Response, err error) {
	tr := telemetry.ActiveTracer()
	_, look := tr.StartSpan(ctx, "cache.lookup")
	if c, ok := s.cache.get(proto.key); ok {
		s.met.cacheHits.Inc()
		look.SetAttr("result", "hit")
		look.End()
		return nil, false, &Response{Compiled: c, Cached: true}, nil
	}
	// LRU miss: consult the persistent tier (when configured) and
	// promote a hit so the next lookup stays in memory.
	if c, ok := s.disk.get(proto.key); ok {
		s.cache.put(proto.key, c)
		s.met.cacheHits.Inc()
		look.SetAttr("result", "disk_hit")
		look.End()
		return nil, false, &Response{Compiled: c, Cached: true, DiskHit: true}, nil
	}
	look.SetAttr("result", "miss")
	look.End()
	s.met.cacheMisses.Inc()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.shed["draining"].Inc()
		return nil, false, nil, ErrDraining
	}
	if f := s.flights[proto.key]; f != nil {
		f.refs++
		s.mu.Unlock()
		s.met.dedup.Inc()
		// The joiner's trace shows the collapse; the leader's trace owns
		// the actual work.
		tr.Point(telemetry.TraceContextOf(ctx), "dedup.join")
		return f, true, nil, nil
	}
	// Deadline-aware shedding: if the p95 queue wait already eats the
	// whole budget, the request would only time out in line.
	if est := s.waits.p95(); est > 0 && timeout.Seconds() < est {
		s.mu.Unlock()
		s.met.shed["deadline"].Inc()
		return nil, false, nil, &OverloadError{
			Reason:     "deadline cannot cover queue wait",
			RetryAfter: secondsToDuration(est),
		}
	}
	f = proto
	f.enqueued = s.cfg.now()
	f.refs = 1
	f.done = make(chan struct{})
	f.ctx, f.cancel = context.WithTimeout(s.baseCtx, timeout)
	// The flight outlives this (leader) caller's ctx, so trace linkage
	// is carried by value: children of the request parent under the
	// submit span even when a joiner ends up consuming the result.
	f.tc = telemetry.TraceContextOf(ctx)
	f.qspan = tr.StartSpanFrom(f.tc, "queue.wait")
	select {
	case s.jobs <- f:
	default:
		s.mu.Unlock()
		f.cancel()
		f.qspan.Fail(errors.New("queue full"))
		f.qspan.End()
		s.met.shed["full"].Inc()
		retry := time.Second
		if est := s.waits.p95(); est > 0 {
			retry = secondsToDuration(est)
		}
		return nil, false, nil, &OverloadError{Reason: "queue full", RetryAfter: retry}
	}
	s.flights[proto.key] = f
	s.mu.Unlock()
	s.met.admitted.Inc()
	s.met.queueDepth.Add(1)
	return f, false, nil, nil
}

// await blocks until f finishes or ctx ends; it returns nil when the
// caller's ctx ended first (the flight keeps running for any other
// waiters — Submit then calls leave).
func (s *Server) await(ctx context.Context, f *flight, joined bool) *Response {
	select {
	case <-f.done:
		r := *f.resp // shallow copy so each waiter owns its flags
		r.Deduped = joined
		return &r
	case <-ctx.Done():
		return nil
	}
}

// leave drops one waiter from f; the last leaver cancels the flight so
// an abandoned search degrades to its incumbent immediately instead of
// burning budget for nobody.
func (s *Server) leave(f *flight) {
	s.mu.Lock()
	f.refs--
	cancel := f.refs <= 0
	s.mu.Unlock()
	if cancel {
		f.cancel()
	}
}

// worker is one pool goroutine: it drains the queue until Shutdown
// closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for f := range s.jobs {
		s.execute(f)
	}
}

// execute runs one flight to completion and answers every waiter.
func (s *Server) execute(f *flight) {
	wait := s.cfg.now().Sub(f.enqueued)
	s.met.queueDepth.Add(-1)
	s.met.waitHist.ObserveExemplar(wait.Microseconds(), f.tc.TraceID, time.Now().Unix())
	s.waits.observe(wait.Seconds())

	if err := f.ctx.Err(); err != nil {
		resp := &Response{Err: mapCtxErr(err), Wait: wait}
		f.qspan.Fail(resp.Err)
		f.qspan.End()
		s.finish(f, resp)
		return
	}
	f.qspan.End()

	decision := s.breaker.allow(f.key)
	if tr := telemetry.ActiveTracer(); tr != nil && f.tc.Valid() {
		state := "closed"
		switch decision {
		case allowFastPath:
			state = "open"
		case allowProbe:
			state = "half_open"
		}
		tr.Point(f.tc, "breaker.decision", "state", state)
	}
	opts := f.opts
	if decision == allowFastPath {
		opts.HeuristicOnly = true
		s.met.fastPath.Inc()
	}

	resp := s.compileWithRetry(f, opts)
	resp.Wait = wait
	resp.FastPath = decision == allowFastPath

	if decision != allowFastPath {
		s.breaker.record(f.key, budgetFailure(resp.Err), decision == allowProbe)
	}
	if cacheable(resp) {
		s.cache.put(f.key, resp.Compiled)
		s.disk.put(f.key, resp.Compiled)
	}
	s.finish(f, resp)
}

// finish publishes resp to every waiter and retires the flight.
func (s *Server) finish(f *flight, resp *Response) {
	s.met.completed.Inc()
	s.mu.Lock()
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	s.mu.Unlock()
	f.resp = resp
	close(f.done)
	f.cancel()
}

// compileWithRetry runs the compilation, retrying transient stage
// faults with exponential backoff and jitter inside the flight's
// budget. Permanent failures (invalid input, frontend faults) and
// budget outcomes (curtailed/deadline/canceled) return immediately.
// Total retry wall-time is capped by the request deadline: a backoff
// that could not complete before the flight's budget expires is not
// taken at all — the caller gets the previous attempt's answer now
// instead of a worker sleeping the remaining budget away.
func (s *Server) compileWithRetry(f *flight, opts pipesched.Options) *Response {
	tr := telemetry.ActiveTracer()
	attempts := 0
	for {
		aspan := tr.StartSpanFrom(f.tc, "compile.attempt")
		actx := f.ctx
		if aspan != nil {
			aspan.SetAttr("attempt", strconv.Itoa(attempts+1))
			if !opts.Sched.IsPaper() {
				aspan.SetAttr("sched", opts.Sched.String())
			}
			actx = telemetry.WithTraceContext(f.ctx, aspan.Context())
		}
		c, err := s.compileOnce(actx, f, opts)
		if aspan != nil {
			if c != nil {
				aspan.SetAttr("rung", c.Quality.String())
			}
			aspan.Fail(err)
			aspan.End()
		}
		if err == nil || !transientFault(err) || attempts >= s.cfg.MaxRetries || f.ctx.Err() != nil {
			return &Response{Compiled: c, Err: err, Retries: attempts}
		}
		delay := s.backoff(attempts + 1)
		if deadline, ok := f.ctx.Deadline(); ok && s.cfg.now().Add(delay).After(deadline) {
			// The backoff alone would blow the caller's budget; another
			// attempt after it could only do worse.
			return &Response{Compiled: c, Err: err, Retries: attempts}
		}
		attempts++
		s.met.retries.Inc()
		tr.Point(f.tc, "retry.backoff", "delay", delay.String())
		select {
		case <-time.After(delay):
		case <-f.ctx.Done():
			// Budget ran out mid-backoff; the previous attempt's result
			// (legal, possibly degraded) is still the best answer.
			return &Response{Compiled: c, Err: err, Retries: attempts}
		}
	}
}

// compileOnce is one attempt, with a last-resort panic isolation layer
// over the pipeline's own per-stage isolation.
func (s *Server) compileOnce(ctx context.Context, f *flight, opts pipesched.Options) (c *pipesched.Compiled, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.met.panics.Inc()
			// A panic that escaped stage isolation is exactly what the
			// black box exists for: dump the recent span ring.
			telemetry.ActiveTracer().Trigger("panic")
			c, err = nil, fmt.Errorf("%w: compile panicked outside stage isolation: %v", ErrInternal, r)
		}
	}()
	if testHookCompile != nil {
		testHookCompile(ctx)
	}
	if f.block != nil {
		return pipesched.ScheduleCtx(ctx, f.block, f.m, opts)
	}
	return pipesched.CompileCtx(ctx, f.source, f.m, opts)
}

// testHookCompile, when non-nil, runs at the top of every compile
// attempt with the flight's context — the tests' lever for stalls and
// panics that originate in the service layer rather than a pipeline
// stage.
var testHookCompile func(ctx context.Context)

// backoff returns the nth retry delay: RetryBase doubling per attempt,
// capped at RetryMax, plus up to 50% jitter so retry storms decorrelate.
func (s *Server) backoff(attempt int) time.Duration {
	d := s.cfg.RetryBase << uint(attempt-1)
	if d > s.cfg.RetryMax || d <= 0 {
		d = s.cfg.RetryMax
	}
	s.rngMu.Lock()
	j := time.Duration(s.rng.Int63n(int64(d)/2 + 1))
	s.rngMu.Unlock()
	return d + j
}

// transientFault reports whether err is worth retrying: an isolated
// stage fault (panic or injected error) anywhere but the frontend.
// Frontend failures are permanent — same input, same parse — and
// budget/validation errors have their own handling.
func transientFault(err error) bool {
	var se *pipesched.StageError
	if !errors.As(err, &se) {
		return false
	}
	return se.Stage != "frontend"
}

// budgetFailure reports whether err is a search-budget blowout — the
// outcomes the circuit breaker counts.
func budgetFailure(err error) bool {
	return errors.Is(err, pipesched.ErrCurtailed) || errors.Is(err, pipesched.ErrDeadline)
}

// mapCtxErr maps a flight context error onto the public taxonomy.
func mapCtxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: budget expired in queue", pipesched.ErrDeadline)
	}
	return fmt.Errorf("%w: request abandoned in queue", pipesched.ErrCanceled)
}

func secondsToDuration(s float64) time.Duration {
	d := time.Duration(s * float64(time.Second))
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns the number of queued (not yet executing) flights.
func (s *Server) QueueDepth() int { return len(s.jobs) }

// DiskStore exposes the persistent cache tier's store — the fleet layer
// uses it for key-range handoff on membership change. Nil when no
// Config.CacheDir was set (or the tier failed to open).
func (s *Server) DiskStore() *store.Store {
	if s.disk == nil {
		return nil
	}
	return s.disk.st
}

// DiskRecovery reports the persistent tier's startup recovery scan:
// entries recovered and servable, entries quarantined as corrupt. Zero
// when no tier is configured.
func (s *Server) DiskRecovery() store.RecoveryReport {
	if s.disk == nil {
		return store.RecoveryReport{}
	}
	return s.disk.rep
}

// DiskErr reports why the persistent tier is unavailable (nil when it
// is healthy or was never configured).
func (s *Server) DiskErr() error { return s.diskErr }

// Shutdown drains the server: admission stops immediately
// (ErrDraining), queued and running work runs to completion, and once
// ctx expires any still-running searches are canceled — the anytime
// pipeline then returns best incumbents within microseconds, so every
// waiter is answered promptly either way. Shutdown is idempotent; it
// returns ctx.Err() when the drain deadline forced degradation, nil on
// a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()
	if first {
		close(s.jobs)
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	// The persistent cache tier is deliberately NOT closed here: it
	// holds no file descriptors between operations, the drained worker
	// pool can no longer write to it, and the fleet layer still reads it
	// for key-range handoff after a graceful node removal.
	select {
	case <-done:
		s.cancelBase()
		return nil
	case <-ctx.Done():
		s.cancelBase() // degrade in-flight searches to incumbents
		<-done
		return ctx.Err()
	}
}

// Close is Shutdown with an immediate deadline: stop admitting, degrade
// everything in flight, answer every waiter, return.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Shutdown(ctx)
}

// resolveMachine parses a MachineSpec into a validated machine.
func resolveMachine(spec MachineSpec) (*pipesched.Machine, error) {
	switch {
	case spec.Preset != "":
		mk, ok := machine.Presets()[spec.Preset]
		if !ok {
			return nil, fmt.Errorf("%w: unknown machine preset %q", ErrInvalidRequest, spec.Preset)
		}
		return mk(), nil
	case spec.Text != "":
		m, err := machine.ParseString(spec.Text)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrInvalidRequest, err)
		}
		return m, nil
	}
	return nil, fmt.Errorf("%w: machine preset or text required", ErrInvalidRequest)
}

// resolveOptions maps wire options onto pipesched.Options.
func resolveOptions(o RequestOptions) (pipesched.Options, error) {
	opts := pipesched.Options{
		Lambda:            o.Lambda,
		Optimize:          o.Optimize,
		Reassociate:       o.Reassociate,
		Registers:         o.Registers,
		ExplainNOPs:       o.ExplainNOPs,
		AssignPipelines:   o.AssignPipelines,
		StrongEquivalence: o.StrongEquivalence,
	}
	switch o.Mode {
	case "", "nop":
		opts.Mode = pipesched.NOPPadding
	case "explicit":
		opts.Mode = pipesched.ExplicitInterlock
	case "implicit":
		opts.Mode = pipesched.ImplicitInterlock
	case "tera":
		opts.Mode = pipesched.TeraInterlock
	default:
		return opts, fmt.Errorf("%w: unknown mode %q (want nop, explicit, implicit or tera)", ErrInvalidRequest, o.Mode)
	}
	sched, err := pipesched.ParseSchedMode(o.Sched)
	if err != nil {
		return opts, fmt.Errorf("%w: %w", ErrInvalidRequest, err)
	}
	opts.Sched = sched
	return opts, nil
}
