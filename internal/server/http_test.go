package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pipesched"
)

func postCompile(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, *WireResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/compile", strings.NewReader(body)))
	var wr WireResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &wr); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, rec.Body.String())
	}
	return rec, &wr
}

func TestHTTPCompileSingle(t *testing.T) {
	s := newTestServer(t, testConfig())
	h := s.Handler()
	body, _ := json.Marshal(tupleRequest(1))
	rec, wr := postCompile(t, h, string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200\n%s", rec.Code, rec.Body.String())
	}
	if wr.ID != "req-1" || wr.Assembly == "" || wr.Quality != "optimal" || !wr.Optimal || wr.Error != nil {
		t.Fatalf("unexpected wire response: %+v", wr)
	}
	if wr.Gap != 0 {
		t.Errorf("optimal compile gap = %d, want 0 (certified)", wr.Gap)
	}
}

func TestHTTPCompileInvalid(t *testing.T) {
	s := newTestServer(t, testConfig())
	h := s.Handler()
	cases := []struct {
		name, body string
	}{
		{"malformed json", "{nope"},
		{"no input", `{"machine":{"preset":"simulation"}}`},
		{"bad preset", `{"source":"a = b","machine":{"preset":"nope"}}`},
	}
	for _, c := range cases {
		rec, wr := postCompile(t, h, c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.name, rec.Code)
		}
		if wr.Error == nil || wr.Error.Code != "invalid_request" {
			t.Errorf("%s: error = %+v, want code invalid_request", c.name, wr.Error)
		}
	}
}

func TestHTTPCompileMethodAndSize(t *testing.T) {
	s := newTestServer(t, testConfig())
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/compile", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile = %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	huge := bytes.Repeat([]byte("x"), maxBodyBytes+2)
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/compile", bytes.NewReader(huge)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", rec.Code)
	}
}

func TestHTTPBatch(t *testing.T) {
	s := newTestServer(t, testConfig())
	h := s.Handler()
	batch := map[string]any{"requests": []any{
		tupleRequest(1),
		&Request{ID: "bad", Machine: MachineSpec{Preset: "simulation"}}, // no input
		nil,
	}}
	body, _ := json.Marshal(batch)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/compile", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 with per-item errors\n%s", rec.Code, rec.Body.String())
	}
	var out struct {
		Responses []*WireResponse `json:"responses"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 3 {
		t.Fatalf("got %d responses, want 3", len(out.Responses))
	}
	if out.Responses[0].Error != nil || out.Responses[0].Assembly == "" {
		t.Errorf("item 0: %+v, want clean result", out.Responses[0])
	}
	if out.Responses[1].Error == nil || out.Responses[1].Error.Code != "invalid_request" {
		t.Errorf("item 1: %+v, want invalid_request", out.Responses[1])
	}
	if out.Responses[2].Error == nil || out.Responses[2].Error.Code != "invalid_request" {
		t.Errorf("item 2: %+v, want invalid_request for null entry", out.Responses[2])
	}
}

// TestHTTPOverload: a saturated queue surfaces as 503 with both a
// Retry-After header and a typed JSON error.
func TestHTTPOverload(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	testHookCompile = func(ctx context.Context) {
		started <- struct{}{}
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	defer func() { testHookCompile = nil }()
	s := newTestServer(t, cfg)
	h := s.Handler()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = s.Submit(context.Background(), tupleRequest(1)) }()
	<-started
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = s.Submit(context.Background(), tupleRequest(2)) }()
	waitFor(t, func() bool { return s.QueueDepth() == 1 })

	body, _ := json.Marshal(tupleRequest(3))
	rec, wr := postCompile(t, h, string(body))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503\n%s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}
	if wr.Error == nil || wr.Error.Code != "overloaded" || wr.Error.RetryAfterMS <= 0 {
		t.Errorf("error = %+v, want overloaded with retry_after_ms", wr.Error)
	}
	close(gate)
	wg.Wait()
}

// TestHTTPDegradedIs200: a degraded-but-legal outcome is a 200 whose
// error field names the rung's typed reason.
func TestHTTPDegradedIs200(t *testing.T) {
	cfg := testConfig()
	cfg.BreakerThreshold = -1
	s := newTestServer(t, cfg)
	h := s.Handler()
	req := &Request{Tuples: tangleTuples(2), Machine: MachineSpec{Preset: "simulation"}, Options: RequestOptions{Lambda: 1}}
	body, _ := json.Marshal(req)
	rec, wr := postCompile(t, h, string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (schedule delivered)\n%s", rec.Code, rec.Body.String())
	}
	if wr.Assembly == "" || !wr.Degraded || wr.Error == nil || wr.Error.Code != "curtailed" {
		t.Fatalf("wire = %+v, want degraded curtailed result with assembly", wr)
	}
	if wr.Gap <= 0 {
		t.Errorf("curtailed result gap = %d, want > 0 (certified distance to optimal)", wr.Gap)
	}
}

func TestHTTPHealthz(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q, want 200 ok", rec.Code, rec.Body.String())
	}
	s.Close()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("healthz after Close = %d %q, want 503 draining", rec.Code, rec.Body.String())
	}
}

// TestHTTPMetricsMounted: building the server with a telemetry metric
// set mounts the introspection endpoints and the service counters
// appear in the Prometheus text.
func TestHTTPMetricsMounted(t *testing.T) {
	pm := pipesched.EnableTelemetry()
	t.Cleanup(pipesched.DisableTelemetry)
	cfg := testConfig()
	cfg.Metrics = pm
	s := newTestServer(t, cfg)
	h := s.Handler()
	body, _ := json.Marshal(tupleRequest(1))
	if rec, _ := postCompile(t, h, string(body)); rec.Code != http.StatusOK {
		t.Fatalf("compile = %d, want 200", rec.Code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", rec.Code)
	}
	for _, want := range []string{
		"pipesched_server_admitted_total 1",
		"pipesched_server_completed_total 1",
		"pipesched_server_cache_misses_total 1",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
