package server

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestBreakerLifecycle walks the full circuit: closed → open after
// threshold consecutive failures → half-open after the cooldown → one
// probe → closed on probe success.
func TestBreakerLifecycle(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	var transitions []string
	b := newBreaker(3, time.Minute, 16, clock.now, func(to string) { transitions = append(transitions, to) })
	key := "k1"

	// Closed: full searches allowed; failures accumulate.
	for i := 0; i < 2; i++ {
		if got := b.allow(key); got != allowFull {
			t.Fatalf("closed allow #%d = %v, want allowFull", i, got)
		}
		b.record(key, true, false)
		if st := b.stateOf(key); st != stateClosed {
			t.Fatalf("state after %d failures = %v, want closed", i+1, st)
		}
	}

	// Third consecutive failure trips the circuit.
	b.allow(key)
	b.record(key, true, false)
	if st := b.stateOf(key); st != stateOpen {
		t.Fatalf("state after threshold failures = %v, want open", st)
	}

	// Open: fail fast until the cooldown elapses.
	if got := b.allow(key); got != allowFastPath {
		t.Fatalf("open allow = %v, want allowFastPath", got)
	}
	clock.advance(59 * time.Second)
	if got := b.allow(key); got != allowFastPath {
		t.Fatalf("open allow before cooldown = %v, want allowFastPath", got)
	}

	// Cooldown over: half-open, exactly one probe; everyone else still
	// takes the fast path.
	clock.advance(2 * time.Second)
	if got := b.allow(key); got != allowProbe {
		t.Fatalf("allow after cooldown = %v, want allowProbe", got)
	}
	if st := b.stateOf(key); st != stateHalfOpen {
		t.Fatalf("state after probe admitted = %v, want half_open", st)
	}
	if got := b.allow(key); got != allowFastPath {
		t.Fatalf("second allow during probe = %v, want allowFastPath", got)
	}

	// Probe success closes the circuit and resets the failure count.
	b.record(key, false, true)
	if st := b.stateOf(key); st != stateClosed {
		t.Fatalf("state after probe success = %v, want closed", st)
	}
	if got := b.allow(key); got != allowFull {
		t.Fatalf("allow after recovery = %v, want allowFull", got)
	}
	// One failure must not re-open a freshly closed circuit.
	b.record(key, true, false)
	if st := b.stateOf(key); st != stateClosed {
		t.Fatalf("state after single post-recovery failure = %v, want closed", st)
	}

	want := []string{"open", "half_open", "closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe re-opens the
// circuit and restarts the cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(2, time.Minute, 16, clock.now, nil)
	key := "k"
	for i := 0; i < 2; i++ {
		b.allow(key)
		b.record(key, true, false)
	}
	if st := b.stateOf(key); st != stateOpen {
		t.Fatalf("state = %v, want open", st)
	}
	clock.advance(time.Minute)
	if got := b.allow(key); got != allowProbe {
		t.Fatalf("allow = %v, want allowProbe", got)
	}
	b.record(key, true, true) // probe fails
	if st := b.stateOf(key); st != stateOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	// Cooldown restarted: still fast path right away...
	if got := b.allow(key); got != allowFastPath {
		t.Fatalf("allow after failed probe = %v, want allowFastPath", got)
	}
	// ...and a new probe is admitted after another full cooldown.
	clock.advance(time.Minute)
	if got := b.allow(key); got != allowProbe {
		t.Fatalf("allow after second cooldown = %v, want allowProbe", got)
	}
}

// TestBreakerSuccessResetsFailureStreak: the failure count is
// *consecutive* — a success in between starts the streak over.
func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(2, time.Minute, 16, clock.now, nil)
	key := "k"
	b.allow(key)
	b.record(key, true, false)
	b.allow(key)
	b.record(key, false, false) // success resets
	b.allow(key)
	b.record(key, true, false)
	if st := b.stateOf(key); st != stateClosed {
		t.Fatalf("state = %v, want closed (streak was broken)", st)
	}
}

// TestBreakerKeysAreIndependent: one key tripping must not affect
// another.
func TestBreakerKeysAreIndependent(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, time.Minute, 16, clock.now, nil)
	b.allow("bad")
	b.record("bad", true, false)
	if st := b.stateOf("bad"); st != stateOpen {
		t.Fatalf("bad key state = %v, want open", st)
	}
	if got := b.allow("good"); got != allowFull {
		t.Fatalf("good key allow = %v, want allowFull", got)
	}
}

// TestBreakerEviction: the entry table stays bounded, evicting the
// least recently touched key.
func TestBreakerEviction(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, time.Minute, 2, clock.now, nil)
	b.allow("a")
	clock.advance(time.Second)
	b.allow("b")
	clock.advance(time.Second)
	b.allow("c") // evicts a
	b.mu.Lock()
	n := len(b.entries)
	_, hasA := b.entries["a"]
	b.mu.Unlock()
	if n != 2 || hasA {
		t.Fatalf("entries = %d (hasA=%v), want 2 without a", n, hasA)
	}
}

// TestBreakerDisabled: a negative threshold turns the breaker off.
func TestBreakerDisabled(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(-1, time.Minute, 2, clock.now, nil)
	for i := 0; i < 10; i++ {
		if got := b.allow("k"); got != allowFull {
			t.Fatalf("allow = %v, want allowFull", got)
		}
		b.record("k", true, false)
	}
	if st := b.stateOf("k"); st != stateClosed {
		t.Fatalf("state = %v, want closed", st)
	}
}
