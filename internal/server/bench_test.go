package server

import (
	"context"
	"testing"
	"time"
)

// benchRequests pre-builds a pool of distinct requests so the benchmark
// exercises real compilations rather than one hot fingerprint.
func benchRequests(n int) []*Request {
	reqs := make([]*Request, n)
	for i := range reqs {
		reqs[i] = tupleRequest(i)
	}
	return reqs
}

// BenchmarkServerThroughput measures end-to-end Submit throughput with
// caching off: every request pays admission, queueing and a full
// compile. This is the number BENCH_server.json tracks.
func BenchmarkServerThroughput(b *testing.B) {
	s := New(Config{
		QueueDepth:       1024,
		DefaultTimeout:   10 * time.Second,
		CacheEntries:     -1,
		BreakerThreshold: -1,
	})
	defer s.Close()
	reqs := benchRequests(64)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := reqs[i%len(reqs)]
			i++
			if _, err := s.Submit(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServerCachedThroughput measures the content-addressed cache
// fast path: after warmup every request is a hit.
func BenchmarkServerCachedThroughput(b *testing.B) {
	s := New(Config{
		QueueDepth:       1024,
		DefaultTimeout:   10 * time.Second,
		CacheEntries:     128,
		BreakerThreshold: -1,
	})
	defer s.Close()
	reqs := benchRequests(64)
	for _, r := range reqs { // warm the cache
		if _, err := s.Submit(context.Background(), r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := reqs[i%len(reqs)]
			i++
			resp, err := s.Submit(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("expected a cache hit after warmup")
			}
		}
	})
}
