package server

import (
	"context"
	"testing"

	"pipesched/internal/telemetry"
)

// TestDiskTierWarmRestart: a server built over a durable cache
// directory serves results cached by a previous incarnation from disk —
// the in-memory LRU died with the old process, the durable tier did not.
func TestDiskTierWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CacheDir = dir

	s1 := New(cfg)
	r1, err := s1.Submit(context.Background(), tupleRequest(1))
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if r1.Cached || r1.DiskHit {
		t.Fatalf("first submit Cached=%v DiskHit=%v, want cold", r1.Cached, r1.DiskHit)
	}
	s1.Close() // the "crash": durable writes were already synced

	cfg.Metrics = telemetry.NewMetrics(telemetry.NewRegistry())
	s2 := New(cfg)
	t.Cleanup(s2.Close)
	if rep := s2.DiskRecovery(); rep.Recovered == 0 {
		t.Fatalf("recovery scan found nothing: %+v", rep)
	}
	r2, err := s2.Submit(context.Background(), tupleRequest(1))
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if !r2.Cached || !r2.DiskHit {
		t.Fatalf("restart submit Cached=%v DiskHit=%v, want a disk hit", r2.Cached, r2.DiskHit)
	}
	if got := s2.met.diskHits.Value(); got != 1 {
		t.Errorf("disk hit counter = %d, want 1", got)
	}

	// Promotion: the disk hit seeded the memory LRU, so the next lookup
	// hits memory, not disk.
	r3, err := s2.Submit(context.Background(), tupleRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cached || r3.DiskHit {
		t.Fatalf("post-promotion submit Cached=%v DiskHit=%v, want memory hit", r3.Cached, r3.DiskHit)
	}
}

// TestDiskTierOnlyCachesCacheable: degraded results never reach the
// durable tier, so a restart cannot replay a fault-era answer.
func TestDiskTierOnlyCachesCacheable(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CacheDir = dir
	s := New(cfg)
	t.Cleanup(s.Close)

	if _, err := s.Submit(context.Background(), tupleRequest(2)); err != nil {
		t.Fatal(err)
	}
	st := s.DiskStore()
	if st == nil {
		t.Fatal("no disk store on a CacheDir server")
	}
	if st.Len() != 1 {
		t.Fatalf("durable entries = %d, want 1 (the optimal result)", st.Len())
	}
}
