package server

import (
	"sync"
	"time"
)

// breakerDecision is what the circuit breaker allows one request to do.
type breakerDecision int

const (
	// allowFull: run the full branch-and-bound search.
	allowFull breakerDecision = iota
	// allowProbe: the circuit is half-open; this request is the single
	// probe that decides whether the circuit closes again.
	allowProbe
	// allowFastPath: the circuit is open; skip the search and serve the
	// Heuristic rung immediately (fail fast, stay legal).
	allowFastPath
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// breaker is a per-fingerprint circuit breaker over search-budget
// failures. A block×machine key whose searches repeatedly blow their
// budget (λ curtailment or deadline expiry) stops being worth full
// searches: after threshold consecutive failures the circuit opens and
// requests for that key skip straight to the Heuristic rung. After
// cooldown the circuit goes half-open and admits exactly one probe
// search; a clean probe closes the circuit, a failed one re-opens it.
type breaker struct {
	threshold  int
	cooldown   time.Duration
	maxEntries int
	now        func() time.Time
	// onTransition observes state changes (for the transition counters);
	// called with the target state name while the lock is held, so it
	// must not call back into the breaker.
	onTransition func(to string)

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

type breakerEntry struct {
	state     breakerState
	fails     int // consecutive budget failures while closed
	openedAt  time.Time
	probing   bool // half-open: a probe is in flight
	lastTouch time.Time
}

func newBreaker(threshold int, cooldown time.Duration, maxEntries int, now func() time.Time, onTransition func(string)) *breaker {
	if onTransition == nil {
		onTransition = func(string) {}
	}
	return &breaker{
		threshold:    threshold,
		cooldown:     cooldown,
		maxEntries:   maxEntries,
		now:          now,
		onTransition: onTransition,
		entries:      map[string]*breakerEntry{},
	}
}

// allow decides what a request for key may do right now.
func (b *breaker) allow(key string) breakerDecision {
	if b.threshold <= 0 {
		return allowFull // breaker disabled
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(key, now)
	e.lastTouch = now
	switch e.state {
	case stateClosed:
		return allowFull
	case stateOpen:
		if now.Sub(e.openedAt) < b.cooldown {
			return allowFastPath
		}
		e.state = stateHalfOpen
		e.probing = true
		b.onTransition("half_open")
		return allowProbe
	default: // half-open
		if e.probing {
			return allowFastPath
		}
		e.probing = true
		return allowProbe
	}
}

// record reports the outcome of a non-fast-path request: failure is
// true when the search blew its budget (ErrCurtailed/ErrDeadline),
// probe when allow returned allowProbe for this request.
func (b *breaker) record(key string, failure, probe bool) {
	if b.threshold <= 0 {
		return
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(key, now)
	e.lastTouch = now
	if probe || e.state == stateHalfOpen {
		e.probing = false
		if failure {
			e.state = stateOpen
			e.openedAt = now
			e.fails = b.threshold
			b.onTransition("open")
		} else {
			e.state = stateClosed
			e.fails = 0
			b.onTransition("closed")
		}
		return
	}
	if e.state != stateClosed {
		return // late result from before the circuit opened; ignore
	}
	if !failure {
		e.fails = 0
		return
	}
	e.fails++
	if e.fails >= b.threshold {
		e.state = stateOpen
		e.openedAt = now
		b.onTransition("open")
	}
}

// state returns the current circuit state for key (closed for unknown
// keys) — introspection for tests and the stats endpoint.
func (b *breaker) stateOf(key string) breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.entries[key]; e != nil {
		return e.state
	}
	return stateClosed
}

// entry returns the tracked entry for key, creating it (and evicting
// the least recently touched entry when the table is full) on demand.
// Caller holds b.mu.
func (b *breaker) entry(key string, now time.Time) *breakerEntry {
	e := b.entries[key]
	if e != nil {
		return e
	}
	if b.maxEntries > 0 && len(b.entries) >= b.maxEntries {
		var oldestKey string
		var oldest time.Time
		for k, cand := range b.entries {
			if oldestKey == "" || cand.lastTouch.Before(oldest) {
				oldestKey, oldest = k, cand.lastTouch
			}
		}
		delete(b.entries, oldestKey)
	}
	e = &breakerEntry{state: stateClosed, lastTouch: now}
	b.entries[key] = e
	return e
}
