package server

import (
	"context"
	"testing"

	"pipesched/internal/telemetry"
)

// TestCacheOccupancyAndEvictionMetrics: the result cache exports its
// occupancy as a gauge and its evictions as a counter, and both track
// the LRU exactly as distinct keys overflow the bound.
func TestCacheOccupancyAndEvictionMetrics(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEntries = 4
	cfg.Metrics = telemetry.NewMetrics(telemetry.NewRegistry())
	s := newTestServer(t, cfg)

	const distinct = 7 // 3 over the bound
	for i := 0; i < distinct; i++ {
		if _, err := s.Submit(context.Background(), tupleRequest(i)); err != nil {
			t.Fatalf("Submit(%d): %v", i, err)
		}
	}
	if got := s.met.cacheEntries.Value(); got != int64(cfg.CacheEntries) {
		t.Errorf("cache occupancy gauge = %d, want %d (full)", got, cfg.CacheEntries)
	}
	if got := s.met.cacheEvictions.Value(); got != distinct-int64(cfg.CacheEntries) {
		t.Errorf("eviction counter = %d, want %d", got, distinct-cfg.CacheEntries)
	}

	// The gauge reflects partial occupancy too, not just saturation.
	cfg2 := testConfig()
	cfg2.CacheEntries = 16
	cfg2.Metrics = telemetry.NewMetrics(telemetry.NewRegistry())
	s2 := newTestServer(t, cfg2)
	for i := 0; i < 3; i++ {
		if _, err := s2.Submit(context.Background(), tupleRequest(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s2.met.cacheEntries.Value(); got != 3 {
		t.Errorf("partial occupancy gauge = %d, want 3", got)
	}
	if got := s2.met.cacheEvictions.Value(); got != 0 {
		t.Errorf("eviction counter = %d with no evictions", got)
	}
}
