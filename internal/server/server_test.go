package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipesched"
	"pipesched/internal/faultinject"
)

// testConfig returns a small, fast server configuration for tests.
func testConfig() Config {
	return Config{
		Workers:          2,
		QueueDepth:       4,
		DefaultTimeout:   2 * time.Second,
		MaxRetries:       2,
		RetryBase:        time.Millisecond,
		RetryMax:         2 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		CacheEntries:     64,
	}
}

// tupleRequest builds a valid tuple-input request; n varies the block
// content so distinct n values get distinct fingerprints.
func tupleRequest(n int) *Request {
	return &Request{
		ID:      fmt.Sprintf("req-%d", n),
		Tuples:  tupleBlock(n),
		Machine: MachineSpec{Preset: "simulation"},
	}
}

func tupleBlock(n int) string {
	return fmt.Sprintf(`b%d:
  1: Const %d
  2: Load #x
  3: Mul @1, @2
  4: Add @3, @1
  5: Store #y, @4`, n, n+1)
}

// chainTuples renders a multiply chain in tuple-text form. Its optimal
// schedule cannot reach zero NOPs, and the seed cost equals the root
// lower bound, so an unforced search certifies the seed instantly while
// forced curtailment (CurtailLambda, which disables the certificate)
// reliably produces ErrCurtailed.
func chainTuples(tuples int) string {
	var sb strings.Builder
	sb.WriteString("chain:\n  1: Load #x\n  2: Mul @1, @1\n")
	prev := 2
	for id := 3; id+1 <= tuples; id += 2 {
		fmt.Fprintf(&sb, "  %d: Load #x\n", id)
		fmt.Fprintf(&sb, "  %d: Mul @%d, @%d\n", id+1, prev, id)
		prev = id + 1
	}
	return sb.String()
}

// tangleTuples renders independent (Load, Load, Mul, Add, Store) units
// whose root lower bound is loose while the seed still pays NOPs: a
// small explicit λ curtails the search with a positive certified gap.
func tangleTuples(units int) string {
	var sb strings.Builder
	sb.WriteString("tangle:\n")
	id := 1
	for i := 0; i < units; i++ {
		fmt.Fprintf(&sb, "  %d: Load #a%d\n", id, i)
		fmt.Fprintf(&sb, "  %d: Load #b%d\n", id+1, i)
		fmt.Fprintf(&sb, "  %d: Mul @%d, @%d\n", id+2, id, id+1)
		fmt.Fprintf(&sb, "  %d: Add @%d, @%d\n", id+3, id+2, id)
		fmt.Fprintf(&sb, "  %d: Store #z%d, @%d\n", id+4, i, id+3)
		id += 5
	}
	return sb.String()
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func TestSubmitBasic(t *testing.T) {
	s := newTestServer(t, testConfig())
	resp, err := s.Submit(context.Background(), tupleRequest(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Compiled == nil || resp.Compiled.Quality != pipesched.Optimal {
		t.Fatalf("want clean optimal result, got %+v", resp)
	}
	if resp.ID != "req-1" {
		t.Errorf("ID = %q, want req-1", resp.ID)
	}
	if resp.Compiled.Assembly == "" {
		t.Error("no assembly emitted")
	}
}

func TestSubmitSourceInput(t *testing.T) {
	s := newTestServer(t, testConfig())
	resp, err := s.Submit(context.Background(), &Request{
		Source:  "b = 15\na = b * a\n",
		Machine: MachineSpec{Preset: "simulation"},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Compiled == nil || resp.Compiled.Assembly == "" {
		t.Fatal("no result for source input")
	}
}

func TestSubmitInvalidRequests(t *testing.T) {
	s := newTestServer(t, testConfig())
	cases := []struct {
		name string
		req  *Request
	}{
		{"nil", nil},
		{"no input", &Request{Machine: MachineSpec{Preset: "simulation"}}},
		{"both inputs", &Request{Source: "a = b", Tuples: "x:\n  1: Load #a", Machine: MachineSpec{Preset: "simulation"}}},
		{"no machine", &Request{Source: "a = b"}},
		{"unknown preset", &Request{Source: "a = b", Machine: MachineSpec{Preset: "nope"}}},
		{"bad machine text", &Request{Source: "a = b", Machine: MachineSpec{Text: "not a machine"}}},
		{"bad tuples", &Request{Tuples: "1: Bogus", Machine: MachineSpec{Preset: "simulation"}}},
		{"bad mode", &Request{Source: "a = b", Machine: MachineSpec{Preset: "simulation"}, Options: RequestOptions{Mode: "warp"}}},
	}
	for _, c := range cases {
		resp, err := s.Submit(context.Background(), c.req)
		if resp != nil || !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: resp=%v err=%v, want nil + ErrInvalidRequest", c.name, resp, err)
		}
		if code := ErrorCode(err); code != "invalid_request" {
			t.Errorf("%s: code = %q, want invalid_request", c.name, code)
		}
	}
}

// TestQueueFullRejects proves admission control under a saturated
// queue: with every worker busy and the queue at capacity, the next
// request is rejected immediately with a typed, retryable error.
func TestQueueFullRejects(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	testHookCompile = func(ctx context.Context) {
		started <- struct{}{}
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	defer func() { testHookCompile = nil }()

	s := newTestServer(t, cfg)
	var wg sync.WaitGroup
	// First request occupies the only worker...
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = s.Submit(context.Background(), tupleRequest(1)) }()
	<-started
	// ...second fills the queue...
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = s.Submit(context.Background(), tupleRequest(2)) }()
	waitFor(t, func() bool { return s.QueueDepth() == 1 })

	// ...third must bounce with ErrOverloaded and a retry hint.
	resp, err := s.Submit(context.Background(), tupleRequest(3))
	if resp != nil || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("resp=%v err=%v, want nil + ErrOverloaded", resp, err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("want *OverloadError with RetryAfter, got %v", err)
	}
	close(gate)
	wg.Wait()
}

// TestDeadlineShedding: a request whose budget cannot cover the
// observed p95 queue wait is rejected without queueing.
func TestDeadlineShedding(t *testing.T) {
	s := newTestServer(t, testConfig())
	// Seed the wait window with 200ms observed waits.
	for i := 0; i < waitWindowMinSamples; i++ {
		s.waits.observe(0.2)
	}
	req := tupleRequest(1)
	req.TimeoutMS = 50 // cannot cover the 200ms p95 wait
	resp, err := s.Submit(context.Background(), req)
	if resp != nil || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("resp=%v err=%v, want nil + ErrOverloaded", resp, err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || !strings.Contains(oe.Reason, "deadline") {
		t.Fatalf("want deadline-shed OverloadError, got %v", err)
	}
	// A request with enough budget sails through.
	req2 := tupleRequest(2)
	req2.TimeoutMS = 2000
	if _, err := s.Submit(context.Background(), req2); err != nil {
		t.Fatalf("roomy request rejected: %v", err)
	}
}

// TestCacheHit: the second identical request is served from the LRU
// without recompiling.
func TestCacheHit(t *testing.T) {
	var compiles int32
	testHookCompile = func(context.Context) { atomic.AddInt32(&compiles, 1) }
	defer func() { testHookCompile = nil }()
	s := newTestServer(t, testConfig())
	r1, err := s.Submit(context.Background(), tupleRequest(1))
	if err != nil || r1.Cached {
		t.Fatalf("first: resp=%+v err=%v", r1, err)
	}
	r2, err := s.Submit(context.Background(), tupleRequest(1))
	if err != nil || !r2.Cached {
		t.Fatalf("second: resp=%+v err=%v, want cache hit", r2, err)
	}
	if got := atomic.LoadInt32(&compiles); got != 1 {
		t.Errorf("compiles = %d, want 1", got)
	}
	if r2.Compiled != r1.Compiled {
		t.Error("cache returned a different result object")
	}
}

// TestSingleflightDedup: concurrent identical requests collapse into
// one compilation.
func TestSingleflightDedup(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEntries = -1 // isolate dedup from caching
	var compiles int32
	gate := make(chan struct{})
	testHookCompile = func(ctx context.Context) {
		atomic.AddInt32(&compiles, 1)
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	defer func() { testHookCompile = nil }()
	s := newTestServer(t, cfg)

	const n = 8
	var wg sync.WaitGroup
	var deduped int32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), tupleRequest(7))
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			if resp.Deduped {
				atomic.AddInt32(&deduped, 1)
			}
		}()
	}
	// Wait until the leader is compiling and every follower has joined,
	// then release.
	key := fingerprintOfRequest(t, s, tupleRequest(7))
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		f := s.flights[key]
		return f != nil && f.refs == n && atomic.LoadInt32(&compiles) == 1
	})
	close(gate)
	wg.Wait()
	if got := atomic.LoadInt32(&compiles); got != 1 {
		t.Errorf("compiles = %d, want 1 (singleflight)", got)
	}
	if got := atomic.LoadInt32(&deduped); got != n-1 {
		t.Errorf("deduped = %d, want %d", got, n-1)
	}
}

// fingerprintOfRequest computes the fingerprint the server would use
// for req.
func fingerprintOfRequest(t *testing.T, s *Server, req *Request) string {
	t.Helper()
	f, _, err := s.prepare(req)
	if err != nil {
		t.Fatal(err)
	}
	return f.key
}

// TestRetryTransientStageFault: a one-shot injected search fault is
// retried and the retry lands a clean optimal result.
func TestRetryTransientStageFault(t *testing.T) {
	defer faultinject.Activate(faultinject.New().
		Plan(faultinject.Search, faultinject.Plan{Err: errors.New("injected"), Times: 1}))()
	s := newTestServer(t, testConfig())
	resp, err := s.Submit(context.Background(), tupleRequest(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Retries != 1 {
		t.Errorf("Retries = %d, want 1", resp.Retries)
	}
	if resp.Compiled.Quality != pipesched.Optimal {
		t.Errorf("Quality = %v, want Optimal after retry", resp.Compiled.Quality)
	}
}

// TestRetryExhaustionKeepsLegalResult: a persistent search fault burns
// all retries but still returns the degraded-but-legal Heuristic rung
// with its typed reason.
func TestRetryExhaustionKeepsLegalResult(t *testing.T) {
	defer faultinject.Activate(faultinject.New().
		Plan(faultinject.Search, faultinject.Plan{Err: errors.New("injected")}))()
	s := newTestServer(t, testConfig())
	resp, err := s.Submit(context.Background(), tupleRequest(1))
	var se *pipesched.StageError
	if !errors.As(err, &se) || se.Stage != "search" {
		t.Fatalf("err = %v, want search *StageError", err)
	}
	if resp == nil || resp.Compiled == nil || resp.Compiled.Quality != pipesched.Heuristic {
		t.Fatalf("want legal Heuristic result alongside the error, got %+v", resp)
	}
	if want := testConfig().MaxRetries; resp.Retries != want {
		t.Errorf("Retries = %d, want %d", resp.Retries, want)
	}
}

// TestFrontendFaultNotRetried: frontend failures are permanent — no
// schedule, no retries.
func TestFrontendFaultNotRetried(t *testing.T) {
	defer faultinject.Activate(faultinject.New().
		Plan(faultinject.Frontend, faultinject.Plan{Err: errors.New("injected")}))()
	s := newTestServer(t, testConfig())
	resp, err := s.Submit(context.Background(), &Request{
		Source:  "a = b",
		Machine: MachineSpec{Preset: "simulation"},
	})
	var se *pipesched.StageError
	if !errors.As(err, &se) || se.Stage != "frontend" {
		t.Fatalf("err = %v, want frontend StageError", err)
	}
	if resp == nil || resp.Compiled != nil {
		t.Fatalf("resp = %+v, want response without a result", resp)
	}
	if resp.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (frontend faults are permanent)", resp.Retries)
	}
	if ErrorCode(err) != "stage_failure" {
		t.Errorf("code = %q, want stage_failure", ErrorCode(err))
	}
}

// TestWorkerPanicIsolation: a panic outside the pipeline's own stage
// isolation is caught by the worker and surfaced as ErrInternal — the
// server keeps serving.
func TestWorkerPanicIsolation(t *testing.T) {
	var fired int32
	testHookCompile = func(context.Context) {
		if atomic.AddInt32(&fired, 1) == 1 {
			panic("server-layer boom")
		}
	}
	defer func() { testHookCompile = nil }()
	cfg := testConfig()
	cfg.MaxRetries = -1 // no retries: surface the panic directly
	s := newTestServer(t, cfg)
	resp, err := s.Submit(context.Background(), tupleRequest(1))
	if resp == nil || resp.Compiled != nil || !errors.Is(err, ErrInternal) {
		t.Fatalf("resp=%+v err=%v, want ErrInternal", resp, err)
	}
	if ErrorCode(err) != "internal" {
		t.Errorf("code = %q, want internal", ErrorCode(err))
	}
	// The pool survived: the next request compiles fine.
	resp, err = s.Submit(context.Background(), tupleRequest(2))
	if err != nil || resp.Compiled == nil {
		t.Fatalf("server died after panic: resp=%v err=%v", resp, err)
	}
}

// TestBreakerFastPathEndToEnd: repeated budget blowouts open the
// circuit, requests skip to the Heuristic rung, and after the cooldown
// a clean probe closes it again.
func TestBreakerFastPathEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 50 * time.Millisecond
	cfg.CacheEntries = -1
	s := newTestServer(t, cfg)
	req := &Request{Tuples: chainTuples(8), Machine: MachineSpec{Preset: "simulation"}}

	// Phase 1: forced curtailment — every search blows its budget.
	restore := faultinject.Activate(faultinject.New().
		Plan(faultinject.Search, faultinject.Plan{CurtailLambda: 1}))
	for i := 0; i < cfg.BreakerThreshold; i++ {
		resp, err := s.Submit(context.Background(), req)
		if !errors.Is(err, pipesched.ErrCurtailed) {
			t.Fatalf("submit %d: err = %v, want ErrCurtailed", i, err)
		}
		if resp == nil || resp.Compiled == nil {
			t.Fatalf("submit %d: curtailment must still return a legal schedule", i)
		}
	}
	// Circuit open: fast path, no error, Heuristic rung, no search.
	resp, err := s.Submit(context.Background(), req)
	if err != nil || !resp.FastPath || resp.Compiled.Quality != pipesched.Heuristic {
		t.Fatalf("open circuit: resp=%+v err=%v, want fast-path Heuristic", resp, err)
	}
	restore()

	// Phase 2: fault gone; after the cooldown the probe runs a full
	// search, succeeds, and the circuit closes.
	time.Sleep(cfg.BreakerCooldown + 10*time.Millisecond)
	resp, err = s.Submit(context.Background(), req)
	if err != nil || resp.FastPath || resp.Compiled.Quality != pipesched.Optimal {
		t.Fatalf("probe: resp=%+v err=%v, want full optimal search", resp, err)
	}
	resp, err = s.Submit(context.Background(), req)
	if err != nil || resp.FastPath || resp.Compiled.Quality != pipesched.Optimal {
		t.Fatalf("after recovery: resp=%+v err=%v, want full optimal search", resp, err)
	}
}

// TestDrain: Shutdown stops admission with a typed error, finishes
// in-flight work, and answers every waiter.
func TestDrain(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	testHookCompile = func(ctx context.Context) {
		select {
		case entered <- struct{}{}:
		default:
		}
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	defer func() { testHookCompile = nil }()
	s := New(cfg)

	inflight := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), tupleRequest(1))
		inflight <- err
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return s.Draining() })

	// New work is refused with the drain sentinel.
	if _, err := s.Submit(context.Background(), tupleRequest(2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}

	// The in-flight request completes cleanly once released.
	close(gate)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestDrainDeadlineDegrades: when the drain budget expires, in-flight
// searches are canceled and still answer their waiters (with a legal
// incumbent or a typed error) instead of hanging.
func TestDrainDeadlineDegrades(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	testHookCompile = func(ctx context.Context) { <-ctx.Done() } // stall until canceled
	defer func() { testHookCompile = nil }()
	s := New(cfg)

	inflight := make(chan struct{})
	var resp *Response
	var rerr error
	go func() {
		resp, rerr = s.Submit(context.Background(), tupleRequest(1))
		close(inflight)
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.flights) == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded (forced degradation)", err)
	}
	select {
	case <-inflight:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight waiter hung after forced drain")
	}
	// The degraded in-flight request must still terminate with a legal
	// result or a typed error.
	if rerr != nil && ErrorCode(rerr) == "error" {
		t.Errorf("untyped error after forced drain: %v", rerr)
	}
	if resp != nil && resp.Compiled != nil && resp.Compiled.Scheduled == nil {
		t.Error("degraded result has no schedule")
	}
}

// TestCallerAbandonment: a caller whose own ctx ends gets a typed error
// immediately; the flight itself is canceled when the last waiter
// leaves and the worker still answers (bookkeeping stays consistent).
func TestCallerAbandonment(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	var calls int32
	testHookCompile = func(ctx context.Context) {
		if atomic.AddInt32(&calls, 1) == 1 {
			<-ctx.Done() // stall only the abandoned flight
		}
	}
	defer func() { testHookCompile = nil }()
	s := newTestServer(t, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, tupleRequest(1))
		done <- err
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.flights) == 1
	})
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, pipesched.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoning caller hung")
	}
	// The flight drains; the server remains usable.
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.flights) == 0
	})
	if _, err := s.Submit(context.Background(), tupleRequest(2)); err != nil {
		t.Fatalf("server unusable after abandonment: %v", err)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestRetryBackoffCappedByDeadline: a backoff that cannot complete
// before the request deadline is not taken at all — the worker answers
// with the previous attempt's (legal, degraded) result immediately
// instead of sleeping the caller's remaining budget away.
func TestRetryBackoffCappedByDeadline(t *testing.T) {
	defer faultinject.Activate(faultinject.New().
		Plan(faultinject.Search, faultinject.Plan{Err: errors.New("injected")}))()
	cfg := testConfig()
	cfg.MaxRetries = 5
	cfg.RetryBase = 10 * time.Second // one backoff alone exceeds the budget
	cfg.RetryMax = 10 * time.Second
	s := newTestServer(t, cfg)

	start := time.Now()
	resp, err := s.Submit(context.Background(), &Request{
		Tuples:    tupleBlock(1),
		Machine:   MachineSpec{Preset: "simulation"},
		TimeoutMS: 200,
	})
	elapsed := time.Since(start)

	var se *pipesched.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want the injected stage error", err)
	}
	if resp == nil || resp.Compiled == nil {
		t.Fatal("no degraded result alongside the error")
	}
	if resp.Retries != 0 {
		t.Errorf("Retries = %d, want 0: every backoff overruns the deadline", resp.Retries)
	}
	// Well under one backoff (10s) and well under even the 200ms budget:
	// the worker returned instead of sleeping.
	if elapsed > 2*time.Second {
		t.Fatalf("Submit took %v: retry backoff slept past the request deadline", elapsed)
	}
}
