package server

import (
	"errors"
	"fmt"
	"time"

	"pipesched"
)

// Typed sentinel errors of the service layer, usable with errors.Is.
// Together with the pipesched sentinels (ErrCurtailed, ErrDeadline,
// ErrCanceled, ErrInvalidMachine, ErrInvalidBlock, *StageError) they
// form the complete failure taxonomy of the compile service: every
// Submit call terminates with a legal schedule, one of these, or both
// (anytime semantics — a degraded result travels WITH its reason).
var (
	// ErrOverloaded: admission control rejected the request — the queue
	// is full, or the observed p95 queue wait already exceeds the
	// request's compile budget so queueing it could only waste capacity.
	// Wrapped in an *OverloadError carrying the suggested retry delay.
	ErrOverloaded = errors.New("server: overloaded")
	// ErrDraining: the server is shutting down and no longer admits work.
	ErrDraining = errors.New("server: draining, not admitting requests")
	// ErrInvalidRequest wraps malformed requests: no input, both source
	// and tuples, an unknown machine preset, or an unparsable machine
	// description or tuple block.
	ErrInvalidRequest = errors.New("server: invalid request")
	// ErrInternal: a panic escaped the compilation pipeline's own stage
	// isolation and was caught by the worker's last-resort recover.
	ErrInternal = errors.New("server: internal error")
)

// OverloadError is the concrete error behind ErrOverloaded; RetryAfter
// is the server's estimate of when capacity will free up (the observed
// p95 queue wait), surfaced as the HTTP Retry-After header.
type OverloadError struct {
	Reason     string // "queue full" | "deadline cannot cover queue wait"
	RetryAfter time.Duration
}

// Error renders the reason and the suggested retry delay.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v: %s (retry after %s)", ErrOverloaded, e.Reason, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// ErrorCode maps any error of the service taxonomy onto a stable wire
// code for the JSON API (and "" for nil). Unknown errors map to "error".
func ErrorCode(err error) string {
	var se *pipesched.StageError
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrInvalidRequest),
		errors.Is(err, pipesched.ErrInvalidMachine),
		errors.Is(err, pipesched.ErrInvalidBlock):
		return "invalid_request"
	case errors.Is(err, ErrInternal):
		return "internal"
	case errors.Is(err, pipesched.ErrCurtailed):
		return "curtailed"
	case errors.Is(err, pipesched.ErrDeadline):
		return "deadline"
	case errors.Is(err, pipesched.ErrCanceled):
		return "canceled"
	case errors.As(err, &se):
		return "stage_failure"
	}
	return "error"
}
