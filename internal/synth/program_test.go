package synth

import (
	"math/rand"
	"strings"
	"testing"

	"pipesched/internal/frontend"
)

func TestGenerateProgramRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		p, err := GenerateProgram(rng, ProgramParams{
			Blocks: 1 + rng.Intn(8), BlockStatements: 4,
			Variables: 5, Constants: 3, BranchPercent: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		reparsed, err := frontend.ParseFile(p.Source)
		if err != nil {
			t.Fatalf("round trip: %v\n%s", err, p.Source)
		}
		if len(reparsed) != len(p.Blocks) {
			t.Fatalf("reparse lost blocks: %d vs %d", len(reparsed), len(p.Blocks))
		}
	}
}

func TestGenerateProgramDeterministic(t *testing.T) {
	gen := func() string {
		rng := rand.New(rand.NewSource(42))
		p, err := GenerateProgram(rng, ProgramParams{Blocks: 5, Variables: 4, Constants: 3, BranchPercent: 50})
		if err != nil {
			t.Fatal(err)
		}
		return p.Source
	}
	if gen() != gen() {
		t.Error("same seed produced different programs")
	}
}

func TestGenerateProgramSharesVariables(t *testing.T) {
	// With a tiny pool, some variable must appear in more than one block.
	rng := rand.New(rand.NewSource(3))
	p, err := GenerateProgram(rng, ProgramParams{Blocks: 6, BlockStatements: 5, Variables: 2, Constants: 2})
	if err != nil {
		t.Fatal(err)
	}
	blocksUsing := 0
	for _, b := range p.Blocks {
		if strings.Contains(sourceOf(p, b.Name), "v0") {
			blocksUsing++
		}
	}
	if blocksUsing < 2 {
		t.Errorf("v0 used in %d blocks; shared pool should span boundaries", blocksUsing)
	}
}

// sourceOf extracts one block's body text from the program source.
func sourceOf(p *Program, name string) string {
	idx := strings.Index(p.Source, "block "+name)
	if idx < 0 {
		return ""
	}
	rest := p.Source[idx:]
	open := strings.IndexByte(rest, '{')
	close := strings.IndexByte(rest, '}')
	if open < 0 || close < open {
		return ""
	}
	return rest[open:close]
}

func TestGenerateProgramStraightLineHasNoTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p, err := GenerateProgram(rng, ProgramParams{Blocks: 5, Variables: 4, Constants: 3, BranchPercent: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range p.Blocks {
		if len(b.Targets) != 0 {
			t.Errorf("block %q has targets %v with BranchPercent=0", b.Name, b.Targets)
		}
	}
}
