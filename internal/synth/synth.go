// Package synth generates the synthetic benchmark blocks used in the
// paper's evaluation (section 5.2). A generator run produces a random
// sequence of assignment statements over a bounded pool of variables and
// constants; the statement-shape and operator frequencies follow a mix
// table modeled on real-program statistics in the spirit of [AlW75]
// (the paper's Table 6 is not legible in the surviving text; DESIGN.md §6
// documents our reconstruction). Loads and stores are not generated
// directly — they arise during tuple generation exactly as the paper
// describes: the first reference to a variable loads it, every
// assignment stores.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"pipesched/internal/frontend"
	"pipesched/internal/ir"
	"pipesched/internal/opt"
	"pipesched/internal/tuplegen"
)

// Mix gives relative statement-shape and operator frequencies.
type Mix struct {
	// Statement shapes (relative weights).
	ConstAssign int // v = const
	CopyAssign  int // v = w
	BinOpVars   int // v = a op b
	BinOpConst  int // v = a op const

	// Operators (relative weights).
	Add int
	Sub int
	Mul int
	Div int
}

// DefaultMix is the reconstruction of the paper's Table 6 documented in
// DESIGN.md: 20% constant assignments, 15% copies, 45% variable-variable
// operations, 20% variable-constant operations; operators 40/25/25/10.
var DefaultMix = Mix{
	ConstAssign: 20,
	CopyAssign:  15,
	BinOpVars:   45,
	BinOpConst:  20,
	Add:         40,
	Sub:         25,
	Mul:         25,
	Div:         10,
}

// Validate checks that both weight groups are usable.
func (m Mix) Validate() error {
	if m.ConstAssign < 0 || m.CopyAssign < 0 || m.BinOpVars < 0 || m.BinOpConst < 0 ||
		m.Add < 0 || m.Sub < 0 || m.Mul < 0 || m.Div < 0 {
		return fmt.Errorf("synth: negative weight in mix")
	}
	if m.ConstAssign+m.CopyAssign+m.BinOpVars+m.BinOpConst == 0 {
		return fmt.Errorf("synth: statement weights sum to zero")
	}
	if m.Add+m.Sub+m.Mul+m.Div == 0 {
		return fmt.Errorf("synth: operator weights sum to zero")
	}
	return nil
}

// Params configures one generated block, mirroring the paper's generator
// inputs: "the number of statements, variables, and constants desired".
type Params struct {
	Statements int
	Variables  int
	Constants  int // size of the constant pool
	Mix        Mix
	Optimize   bool // run the traditional optimizations after lowering
}

// Block is one generated benchmark.
type Block struct {
	Source string    // the synthetic source program
	IR     *ir.Block // lowered (and optionally optimized) tuple block
}

// Generate produces one synthetic block from rng.
func Generate(rng *rand.Rand, p Params) (*Block, error) {
	if p.Statements <= 0 {
		return nil, fmt.Errorf("synth: need at least one statement")
	}
	if p.Variables <= 0 {
		return nil, fmt.Errorf("synth: need at least one variable")
	}
	if p.Constants <= 0 {
		return nil, fmt.Errorf("synth: need at least one constant")
	}
	mix := p.Mix
	if mix == (Mix{}) {
		mix = DefaultMix
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}

	vars := make([]string, p.Variables)
	for i := range vars {
		vars[i] = fmt.Sprintf("v%d", i)
	}
	consts := make([]int64, p.Constants)
	for i := range consts {
		consts[i] = int64(1 + rng.Intn(99)) // nonzero: safe divisors
	}

	pickVar := func() string { return vars[rng.Intn(len(vars))] }
	pickConst := func() int64 { return consts[rng.Intn(len(consts))] }
	pickOp := func() string {
		w := rng.Intn(mix.Add + mix.Sub + mix.Mul + mix.Div)
		switch {
		case w < mix.Add:
			return "+"
		case w < mix.Add+mix.Sub:
			return "-"
		case w < mix.Add+mix.Sub+mix.Mul:
			return "*"
		default:
			return "/"
		}
	}

	var sb strings.Builder
	total := mix.ConstAssign + mix.CopyAssign + mix.BinOpVars + mix.BinOpConst
	for s := 0; s < p.Statements; s++ {
		target := pickVar()
		w := rng.Intn(total)
		switch {
		case w < mix.ConstAssign:
			fmt.Fprintf(&sb, "%s = %d\n", target, pickConst())
		case w < mix.ConstAssign+mix.CopyAssign:
			fmt.Fprintf(&sb, "%s = %s\n", target, pickVar())
		case w < mix.ConstAssign+mix.CopyAssign+mix.BinOpVars:
			fmt.Fprintf(&sb, "%s = %s %s %s\n", target, pickVar(), pickOp(), pickVar())
		default:
			fmt.Fprintf(&sb, "%s = %s %s %d\n", target, pickVar(), pickOp(), pickConst())
		}
	}
	src := sb.String()

	prog, err := frontend.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("synth: generated unparseable source: %w", err)
	}
	block, err := tuplegen.Generate(prog, "synth")
	if err != nil {
		return nil, err
	}
	if p.Optimize {
		block = opt.Optimize(block)
	}
	return &Block{Source: src, IR: block}, nil
}

// GenerateWithTuples repeatedly generates blocks until one lands exactly
// on the requested tuple count (within maxTries attempts). The paper's
// Table 1 needs representative blocks of specific instruction counts.
func GenerateWithTuples(rng *rand.Rand, tuples int, p Params, maxTries int) (*Block, error) {
	if maxTries <= 0 {
		maxTries = 10000
	}
	for try := 0; try < maxTries; try++ {
		// Tuple expansion per statement is roughly 2.5-3x; start near the
		// right statement count and let rejection sampling do the rest.
		p.Statements = maxInt(1, tuples/3+rng.Intn(3)-1)
		b, err := Generate(rng, p)
		if err != nil {
			return nil, err
		}
		if b.IR.Len() == tuples {
			return b, nil
		}
	}
	return nil, fmt.Errorf("synth: could not hit %d tuples in %d tries", tuples, maxTries)
}

// RandomParams draws a generator configuration spanning the structural
// space the differential oracle fuzzes over: a small variable pool
// forces memory-carried serialization (WAR/WAW chains through few
// names), a large one exposes independent parallelism; randomized mix
// weights retarget the statement-shape and operator blend away from the
// paper's Table 6 reconstruction. maxStatements bounds the block size
// (0 selects 7, which keeps most blocks inside exhaustive-search range
// after the ~2.5-3x tuple expansion). The result always validates.
func RandomParams(rng *rand.Rand, maxStatements int) Params {
	if maxStatements <= 0 {
		maxStatements = 7
	}
	p := Params{
		Statements: 1 + rng.Intn(maxStatements),
		Variables:  1 + rng.Intn(6),
		Constants:  1 + rng.Intn(4),
		Optimize:   rng.Intn(2) == 0,
		Mix: Mix{
			ConstAssign: rng.Intn(5),
			CopyAssign:  rng.Intn(5),
			BinOpVars:   rng.Intn(8),
			BinOpConst:  rng.Intn(5),
			Add:         rng.Intn(6),
			Sub:         rng.Intn(4),
			Mul:         rng.Intn(6),
			Div:         rng.Intn(3),
		},
	}
	// Keep both weight groups usable: an all-zero draw collapses onto the
	// dominant shape instead of failing validation.
	if p.Mix.ConstAssign+p.Mix.CopyAssign+p.Mix.BinOpVars+p.Mix.BinOpConst == 0 {
		p.Mix.BinOpVars = 1
	}
	if p.Mix.Add+p.Mix.Sub+p.Mix.Mul+p.Mix.Div == 0 {
		p.Mix.Add = 1
	}
	return p
}

// SizeDistribution draws per-run statement counts whose resulting tuple
// blocks reproduce the shape of the paper's Figure 5: most blocks near
// the mean (≈20 tuples) with a tail past 40. The returned counts are
// statements, not tuples.
func SizeDistribution(rng *rand.Rand, runs int) []int {
	sizes := make([]int, runs)
	for i := range sizes {
		// Triangular-ish distribution over statements 2..18, mode 7
		// (≈ 6-50 tuples after ~2.8x expansion, mean ≈ 20).
		a := rng.Intn(9) // 0..8
		b := rng.Intn(9)
		sizes[i] = 2 + (a+b)/2 + rng.Intn(3)*rng.Intn(4)
	}
	return sizes
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
