package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/dag"
	"pipesched/internal/ir"
	"pipesched/internal/stats"
)

func TestGenerateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b, err := Generate(rng, Params{Statements: 8, Variables: 5, Constants: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Source == "" {
		t.Error("empty source")
	}
	if err := b.IR.Validate(); err != nil {
		t.Fatalf("generated block invalid: %v\n%s", err, b.IR)
	}
	if b.IR.Len() < 8 {
		t.Errorf("8 statements lowered to only %d tuples", b.IR.Len())
	}
	// Every generated block must produce a buildable DAG.
	if _, err := dag.Build(b.IR); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateParamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []Params{
		{Statements: 0, Variables: 1, Constants: 1},
		{Statements: 1, Variables: 0, Constants: 1},
		{Statements: 1, Variables: 1, Constants: 0},
		{Statements: 1, Variables: 1, Constants: 1, Mix: Mix{ConstAssign: -1, Add: 1}},
		{Statements: 1, Variables: 1, Constants: 1,
			Mix: Mix{ConstAssign: 1, Add: 0, Sub: 0, Mul: 0, Div: 0}},
	}
	for i, p := range bad {
		if _, err := Generate(rng, p); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}

func TestDefaultMixValid(t *testing.T) {
	if err := DefaultMix.Validate(); err != nil {
		t.Fatal(err)
	}
	// DESIGN.md documents exactly these reconstruction weights.
	if DefaultMix.ConstAssign != 20 || DefaultMix.CopyAssign != 15 ||
		DefaultMix.BinOpVars != 45 || DefaultMix.BinOpConst != 20 {
		t.Error("statement mix drifted from documented values")
	}
	if DefaultMix.Add != 40 || DefaultMix.Sub != 25 || DefaultMix.Mul != 25 || DefaultMix.Div != 10 {
		t.Error("operator mix drifted from documented values")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(rand.New(rand.NewSource(42)), Params{Statements: 10, Variables: 4, Constants: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(rand.New(rand.NewSource(42)), Params{Statements: 10, Variables: 4, Constants: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != b.Source || a.IR.String() != b.IR.String() {
		t.Error("same seed produced different blocks")
	}
}

func TestStatementMixRoughlyHonored(t *testing.T) {
	// With a mix of only constant assignments, every statement must be
	// "v = const" and the block contains no arithmetic.
	rng := rand.New(rand.NewSource(7))
	b, err := Generate(rng, Params{
		Statements: 30, Variables: 4, Constants: 4,
		Mix: Mix{ConstAssign: 1, Add: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range b.IR.Tuples {
		if tp.Op.IsArith() || tp.Op == ir.Load {
			t.Fatalf("const-only mix produced %v:\n%s", tp.Op, b.IR)
		}
	}
}

func TestOperatorMixRoughlyHonored(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b, err := Generate(rng, Params{
		Statements: 200, Variables: 6, Constants: 4,
		Mix: Mix{BinOpVars: 1, Mul: 1}, // only v = a * b
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range b.IR.Tuples {
		if tp.Op.IsArith() && tp.Op != ir.Mul {
			t.Fatalf("mul-only mix produced %v", tp.Op)
		}
	}
}

func TestDivisorsAreNonzeroConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b, err := Generate(rng, Params{
		Statements: 100, Variables: 3, Constants: 5,
		Mix: Mix{BinOpConst: 1, Div: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// v = a / const with const >= 1: executing with any env never faults.
	env := ir.Env{"v0": -17, "v1": 0, "v2": 3}
	if _, err := ir.Exec(b.IR, env); err != nil {
		t.Errorf("const-divisor program faulted: %v", err)
	}
}

func TestGenerateWithTuplesHitsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, want := range []int{8, 13, 20} {
		b, err := GenerateWithTuples(rng, want, Params{Variables: 8, Constants: 6}, 0)
		if err != nil {
			t.Fatalf("size %d: %v", want, err)
		}
		if b.IR.Len() != want {
			t.Errorf("asked for %d tuples, got %d", want, b.IR.Len())
		}
	}
}

func TestSizeDistributionShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sizes := SizeDistribution(rng, 4000)
	if len(sizes) != 4000 {
		t.Fatalf("got %d sizes", len(sizes))
	}
	fs := make([]float64, len(sizes))
	for i, s := range sizes {
		if s < 2 {
			t.Fatalf("size %d below minimum", s)
		}
		fs[i] = float64(s)
	}
	mean := stats.Mean(fs)
	if mean < 5 || mean > 10 {
		t.Errorf("statement-count mean %.2f outside [5,10]", mean)
	}
	_, max := stats.MinMax(fs)
	if max < 12 {
		t.Errorf("distribution lacks a tail: max %v", max)
	}
}

// TestGeneratedAlwaysValidProperty: any parameters produce valid IR.
func TestGeneratedAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, err := Generate(rng, Params{
			Statements: 1 + rng.Intn(20),
			Variables:  1 + rng.Intn(8),
			Constants:  1 + rng.Intn(6),
			Optimize:   rng.Intn(2) == 0,
		})
		if err != nil {
			return false
		}
		if err := b.IR.Validate(); err != nil {
			return false
		}
		_, err = dag.Build(b.IR)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestOptimizeShrinksOnAverage: optimized synthetic blocks must not be
// larger than unoptimized ones generated from the same seed.
func TestOptimizeShrinksOnAverage(t *testing.T) {
	var plain, optimized int
	for seed := int64(0); seed < 30; seed++ {
		p, err := Generate(rand.New(rand.NewSource(seed)), Params{Statements: 10, Variables: 4, Constants: 3})
		if err != nil {
			t.Fatal(err)
		}
		o, err := Generate(rand.New(rand.NewSource(seed)), Params{Statements: 10, Variables: 4, Constants: 3, Optimize: true})
		if err != nil {
			t.Fatal(err)
		}
		plain += p.IR.Len()
		optimized += o.IR.Len()
	}
	if optimized > plain {
		t.Errorf("optimization grew blocks: %d -> %d tuples", plain, optimized)
	}
}
