package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"pipesched/internal/frontend"
)

// ProgramParams configures the multi-block program generator that feeds
// compilation campaigns: N blocks drawing statements from one shared
// variable pool (so values flow across block boundaries through
// memory), with an optional fraction of explicit "-> target" branch
// headers to break fallthrough chains and create join points.
type ProgramParams struct {
	Blocks          int // number of basic blocks
	BlockStatements int // max statements per block (min 1)
	Variables       int // shared variable pool across all blocks
	Constants       int
	Mix             Mix
	// BranchPercent is the chance (0..100) that a non-final block
	// declares an explicit target list instead of falling through: half
	// such blocks get a two-way conditional (fallthrough + random
	// block), half a direct jump to a random block. 0 yields a pure
	// straight-line chain that trace formation merges end to end.
	BranchPercent int
	Optimize      bool
}

// Program is one generated multi-block benchmark.
type Program struct {
	Source string // full source file in "block name [-> targets] { ... }" form
	Blocks []frontend.NamedProgram
}

// GenerateProgram produces one multi-block program from rng. The
// generated source always round-trips through frontend.ParseFile; every
// explicit target names a declared block.
func GenerateProgram(rng *rand.Rand, p ProgramParams) (*Program, error) {
	if p.Blocks <= 0 {
		return nil, fmt.Errorf("synth: need at least one block")
	}
	if p.BlockStatements <= 0 {
		p.BlockStatements = 4
	}
	if p.Variables <= 0 {
		p.Variables = 6
	}
	if p.Constants <= 0 {
		p.Constants = 4
	}
	if p.BranchPercent < 0 || p.BranchPercent > 100 {
		return nil, fmt.Errorf("synth: branch percent %d out of range", p.BranchPercent)
	}
	mix := p.Mix
	if mix == (Mix{}) {
		mix = DefaultMix
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}

	names := make([]string, p.Blocks)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
	}

	var sb strings.Builder
	for i := range names {
		// One shared Params per block: the same variable names appear in
		// every block, so a store in block i feeds loads in block j.
		body, err := Generate(rng, Params{
			Statements: 1 + rng.Intn(p.BlockStatements),
			Variables:  p.Variables,
			Constants:  p.Constants,
			Mix:        mix,
			Optimize:   p.Optimize,
		})
		if err != nil {
			return nil, err
		}
		header := "block " + names[i]
		if i < len(names)-1 && rng.Intn(100) < p.BranchPercent {
			other := names[rng.Intn(len(names))]
			if rng.Intn(2) == 0 {
				// Two-way conditional: explicit fallthrough + a random arm.
				header += " -> " + names[i+1] + ", " + other
			} else {
				header += " -> " + other
			}
		}
		sb.WriteString(header + " {\n")
		for _, line := range strings.Split(strings.TrimRight(body.Source, "\n"), "\n") {
			sb.WriteString("    " + line + "\n")
		}
		sb.WriteString("}\n\n")
	}

	src := sb.String()
	blocks, err := frontend.ParseFile(src)
	if err != nil {
		return nil, fmt.Errorf("synth: generated unparseable program: %w", err)
	}
	return &Program{Source: src, Blocks: blocks}, nil
}
