package oracle

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"pipesched/internal/core"
	"pipesched/internal/dag"
	"pipesched/internal/exhaustive"
	"pipesched/internal/machine"
	"pipesched/internal/regalloc"
	"pipesched/internal/sim"
)

// This file extends the oracle to the non-paper scheduler modes
// (machine.SchedMode). Each mode gets the same treatment the paper mode
// gets in oracle.go: several independently-configured searches that must
// agree whenever they claim optimality, per-schedule proofs against an
// implementation-independent reference (regalloc's interval sweep for
// MAXLIVE, sim.RunScoreboard for scoreboard timing), exhaustive
// enumeration on blocks small enough, and mode-specific metamorphic
// invariants (modes must degenerate into each other exactly where the
// theory says they do).

// CheckPairMode runs the differential suite for one (block, machine,
// mode) triple. The paper mode delegates to CheckPair; the other modes
// run their own candidate sets and references.
func CheckPairMode(g *dag.Graph, m *machine.Machine, mode machine.SchedMode, cfg Config) []Divergence {
	if err := mode.Validate(); err != nil {
		return []Divergence{{Check: "mode-invalid", Detail: err.Error()}}
	}
	if mode.IsPaper() {
		return CheckPair(g, m, cfg)
	}
	cfg = cfg.withDefaults()
	if mode.Kind == machine.SchedScoreboard {
		return checkScoreboardPair(g, m, mode, cfg)
	}
	return checkPressurePair(g, m, mode, cfg)
}

// modeCandidates is the differential set for a non-paper mode: the same
// ablation grid as DefaultCandidates, each running with Sched set. The
// scoreboard searcher has no bound engine or memo table, so its grid
// drops the ablations that would be no-ops there.
func modeCandidates(mode machine.SchedMode, cfg Config) []Candidate {
	opts := func(mut func(*core.Options)) core.Options {
		o := core.Options{Sched: mode, Lambda: cfg.Lambda}
		if mut != nil {
			mut(&o)
		}
		return o
	}
	cands := []Candidate{
		{Name: "find", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			return core.Find(g, m, opts(nil))
		}},
		{Name: "find-parallel", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			return core.FindParallel(g, m, opts(nil), cfg.Workers)
		}},
		{Name: "find-nolowerbound", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			return core.Find(g, m, opts(func(o *core.Options) { o.DisableLowerBound = true }))
		}},
		{Name: "find-strongequiv", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			return core.Find(g, m, opts(func(o *core.Options) { o.StrongEquivalence = true }))
		}},
	}
	if mode.Kind != machine.SchedScoreboard {
		cands = append(cands,
			Candidate{Name: "find-nomemo", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
				return core.Find(g, m, opts(func(o *core.Options) { o.DisableMemo = true }))
			}},
			Candidate{Name: "find-noprune", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
				return core.Find(g, m, opts(func(o *core.Options) {
					o.DisableLowerBound = true
					o.DisableMemo = true
				}))
			}},
		)
	}
	return cands
}

// checkPressurePair runs the minreg-lex / minreg-k suite. Every emitted
// schedule's MAXLIVE claim is re-derived through regalloc's interval
// sweep of the permuted block (independent of the search core's
// incremental tracker); candidates claiming optimality must agree on the
// mode's objective; a proven-infeasible verdict must not coexist with a
// verified feasible schedule; and the exhaustive pressure reference
// confirms the objective on enumerable blocks.
func checkPressurePair(g *dag.Graph, m *machine.Machine, mode machine.SchedMode, cfg Config) []Divergence {
	var divs []Divergence
	lex := mode.Kind == machine.SchedMinRegLex

	type outcome struct {
		name string
		s    *core.Schedule
	}
	var outs []outcome
	var infeasibleBy []string
	for _, c := range modeCandidates(mode, cfg) {
		s, err := c.Run(g, m)
		switch {
		case err == nil:
			outs = append(outs, outcome{c.Name, s})
			divs = append(divs, checkPressureSchedule(g, m, mode, c.Name, s)...)
		case errors.Is(err, core.ErrInfeasible):
			infeasibleBy = append(infeasibleBy, c.Name)
		case errors.Is(err, core.ErrBudget):
			// Curtailed before finding any feasible schedule: abstains.
		default:
			divs = append(divs, Divergence{Check: "candidate-error", Candidate: c.Name, Detail: err.Error()})
		}
	}

	// A proof of infeasibility and a (legality-verified) feasible
	// schedule cannot both be right.
	if len(infeasibleBy) > 0 && len(outs) > 0 {
		for _, name := range infeasibleBy {
			divs = append(divs, Divergence{
				Check: "infeasible-agree", Candidate: name,
				Detail: fmt.Sprintf("proved MAXLIVE ≤ %d infeasible, but %s returned a schedule with MAXLIVE %d",
					mode.K, outs[0].name, outs[0].s.MaxLive),
			})
		}
	}

	// Optimality differential on the mode's objective: (NOPs, MAXLIVE)
	// lexicographically for minreg-lex, NOPs alone for minreg-k.
	bestN, bestL, bestName := -1, -1, ""
	for _, o := range outs {
		if !o.s.Optimal {
			continue
		}
		if bestN < 0 {
			bestN, bestL, bestName = o.s.TotalNOPs, o.s.MaxLive, o.name
			continue
		}
		if o.s.TotalNOPs != bestN || (lex && o.s.MaxLive != bestL) {
			divs = append(divs, Divergence{
				Check: "optimal-agree", Candidate: o.name,
				Detail: fmt.Sprintf("claims optimal (nops=%d, maxlive=%d), %s claims (nops=%d, maxlive=%d)",
					o.s.TotalNOPs, o.s.MaxLive, bestName, bestN, bestL),
			})
		}
	}
	if bestN >= 0 {
		for _, o := range outs {
			if !o.s.Optimal && o.s.TotalNOPs < bestN {
				divs = append(divs, Divergence{
					Check: "optimal-beaten", Candidate: o.name,
					Detail: fmt.Sprintf("curtailed schedule costs %d NOPs, below the proven optimum %d of %s",
						o.s.TotalNOPs, bestN, bestName),
				})
			}
		}
	}

	// Exhaustive pressure reference on enumerable blocks: the search and
	// a plain enumeration priced through regalloc must agree — on the
	// objective when feasible, on infeasibility otherwise.
	if !cfg.DisableExhaustive {
		if n := exhaustive.CountLegal(g, cfg.ExhaustiveOrders+1); n <= cfg.ExhaustiveOrders {
			var ref exhaustive.PressureResult
			if lex {
				ref = exhaustive.SearchMinRegLex(context.Background(), g, m, 0)
			} else {
				ref = exhaustive.SearchMinRegK(context.Background(), g, m, mode.K, 0)
			}
			switch {
			case ref.Exhausted:
				// Reference did not complete (cannot happen with budget 0
				// short of cancellation); abstain.
			case !ref.Found:
				for _, o := range outs {
					divs = append(divs, Divergence{
						Check: "exhaustive-infeasible", Candidate: o.name,
						Detail: fmt.Sprintf("returned a schedule with MAXLIVE %d, but enumeration of %d orders finds none with MAXLIVE ≤ %d",
							o.s.MaxLive, n, mode.K),
					})
				}
			default:
				if len(infeasibleBy) > 0 {
					divs = append(divs, Divergence{
						Check: "exhaustive-infeasible", Candidate: infeasibleBy[0],
						Detail: fmt.Sprintf("proved MAXLIVE ≤ %d infeasible, but enumeration finds a schedule with (nops=%d, maxlive=%d)",
							mode.K, ref.Best.TotalNOPs, ref.MaxLive),
					})
				}
				if bestN >= 0 && (ref.Best.TotalNOPs != bestN || (lex && ref.MaxLive != bestL)) {
					divs = append(divs, Divergence{
						Check: "exhaustive-pressure", Candidate: bestName,
						Detail: fmt.Sprintf("search claims optimal (nops=%d, maxlive=%d), enumeration over %d orders finds (nops=%d, maxlive=%d)",
							bestN, bestL, n, ref.Best.TotalNOPs, ref.MaxLive),
					})
				}
			}
		}
	}
	return divs
}

// checkPressureSchedule proves one pressure-mode schedule: the paper
// mode's full legality suite (the NOP timing semantics are unchanged),
// plus the MAXLIVE claim re-derived through regalloc and, for minreg-k,
// the bound itself.
func checkPressureSchedule(g *dag.Graph, m *machine.Machine, mode machine.SchedMode, name string, s *core.Schedule) []Divergence {
	divs := checkSchedule(g, m, name, s)
	if len(s.Order) != g.N || !g.IsLegalOrder(s.Order) {
		return divs // pressure claims are meaningless on a broken shape
	}
	nb, err := g.Block.Permute(s.Order)
	if err != nil {
		return append(divs, Divergence{
			Check: "pressure-verify", Candidate: name,
			Detail: fmt.Sprintf("order does not permute the block: %v", err),
		})
	}
	if live := regalloc.Pressure(nb); live != s.MaxLive {
		divs = append(divs, Divergence{
			Check: "pressure-verify", Candidate: name,
			Detail: fmt.Sprintf("schedule claims MAXLIVE %d but the interval sweep computes %d", s.MaxLive, live),
		})
	}
	if mode.Kind == machine.SchedMinRegK && s.MaxLive > mode.K {
		divs = append(divs, Divergence{
			Check: "pressure-bound", Candidate: name,
			Detail: fmt.Sprintf("schedule's MAXLIVE %d violates the mode bound k=%d", s.MaxLive, mode.K),
		})
	}
	return divs
}

// checkScoreboardPair runs the scoreboard-mode suite: every candidate's
// claimed issue ticks and stall count must survive the tick-by-tick
// forward simulation, optimal candidates must agree on the stall count,
// certificates must be sound, and the enumeration+simulation reference
// confirms the optimum on enumerable blocks.
func checkScoreboardPair(g *dag.Graph, m *machine.Machine, mode machine.SchedMode, cfg Config) []Divergence {
	var divs []Divergence

	type outcome struct {
		name string
		s    *core.Schedule
	}
	var outs []outcome
	for _, c := range modeCandidates(mode, cfg) {
		s, err := c.Run(g, m)
		if err != nil {
			divs = append(divs, Divergence{Check: "candidate-error", Candidate: c.Name, Detail: err.Error()})
			continue
		}
		outs = append(outs, outcome{c.Name, s})
		divs = append(divs, checkScoreboardSchedule(g, m, mode, c.Name, s)...)
	}

	bestOpt, bestName := -1, ""
	for _, o := range outs {
		if !o.s.Optimal {
			continue
		}
		if bestOpt < 0 {
			bestOpt, bestName = o.s.TotalNOPs, o.name
			continue
		}
		if o.s.TotalNOPs != bestOpt {
			divs = append(divs, Divergence{
				Check: "optimal-agree", Candidate: o.name,
				Detail: fmt.Sprintf("claims optimal stall count %d, %s claims %d", o.s.TotalNOPs, bestName, bestOpt),
			})
		}
	}
	if bestOpt >= 0 {
		for _, o := range outs {
			if !o.s.Optimal && o.s.TotalNOPs < bestOpt {
				divs = append(divs, Divergence{
					Check: "optimal-beaten", Candidate: o.name,
					Detail: fmt.Sprintf("curtailed schedule has %d stalls, below the proven optimum %d of %s",
						o.s.TotalNOPs, bestOpt, bestName),
				})
			}
			if o.s.RootLB > bestOpt {
				divs = append(divs, Divergence{
					Check: "bound-admissible", Candidate: o.name,
					Detail: fmt.Sprintf("root lower bound %d exceeds the proven optimal stall count %d of %s",
						o.s.RootLB, bestOpt, bestName),
				})
			}
			if o.s.Gap == 0 && o.s.TotalNOPs != bestOpt {
				divs = append(divs, Divergence{
					Check: "gap-sound", Candidate: o.name,
					Detail: fmt.Sprintf("gap 0 certifies %d stalls as optimal, but %s proves the optimum is %d",
						o.s.TotalNOPs, bestName, bestOpt),
				})
			}
		}
	}

	if bestOpt >= 0 && !cfg.DisableExhaustive {
		if n := exhaustive.CountLegal(g, cfg.ExhaustiveOrders+1); n <= cfg.ExhaustiveOrders {
			ref := exhaustive.SearchScoreboard(context.Background(), g, m, mode.Window, mode.Width, 0)
			if ref.Found && !ref.Exhausted && ref.Stalls != bestOpt {
				divs = append(divs, Divergence{
					Check: "exhaustive-scoreboard", Candidate: bestName,
					Detail: fmt.Sprintf("search claims optimal stall count %d, enumeration+simulation over %d orders finds %d",
						bestOpt, n, ref.Stalls),
				})
			}
		}
	}
	return divs
}

// checkScoreboardSchedule proves one scoreboard-mode schedule: shape,
// topological legality, certificate consistency, the no-NOP-padding
// convention, and the claimed issue ticks and stall count replayed
// through the independent forward simulator.
func checkScoreboardSchedule(g *dag.Graph, m *machine.Machine, mode machine.SchedMode, name string, s *core.Schedule) []Divergence {
	var divs []Divergence
	bad := func(check, format string, args ...any) {
		divs = append(divs, Divergence{Check: check, Candidate: name, Detail: fmt.Sprintf(format, args...)})
	}
	if len(s.Order) != g.N || len(s.Eta) != g.N || len(s.Pipes) != g.N || len(s.IssueTicks) != g.N {
		bad("schedule-legal", "schedule shape %d/%d/%d/%d does not match block size %d",
			len(s.Order), len(s.Eta), len(s.Pipes), len(s.IssueTicks), g.N)
		return divs
	}
	if !g.IsLegalOrder(s.Order) {
		bad("schedule-legal", "order %v violates dependences", s.Order)
		return divs
	}
	if s.Optimal != (s.Stopped == nil) {
		bad("schedule-legal", "Optimal=%t inconsistent with Stopped=%v", s.Optimal, s.Stopped)
	}
	if s.RootLB < 0 || s.Gap < 0 {
		bad("schedule-legal", "negative certificate: RootLB=%d Gap=%d", s.RootLB, s.Gap)
	}
	if s.Optimal && s.Gap != 0 {
		bad("schedule-legal", "proven-optimal result carries nonzero gap %d", s.Gap)
	}
	if s.RootLB > s.TotalNOPs {
		bad("bound-admissible", "root lower bound %d exceeds the returned schedule's %d stalls", s.RootLB, s.TotalNOPs)
	}
	for i, eta := range s.Eta {
		if eta != 0 {
			bad("schedule-legal", "scoreboard schedule carries NOP padding %d at position %d", eta, i)
			break
		}
	}
	in := sim.ScoreboardInput{
		Input:  sim.Input{Graph: g, M: m, Order: s.Order, Pipes: s.Pipes},
		Window: mode.Window,
		Width:  mode.Width,
	}
	if err := sim.VerifyScoreboard(in, s.IssueTicks, s.TotalNOPs); err != nil {
		divs = append(divs, Divergence{Check: "sim-verify", Candidate: name, Detail: err.Error()})
	}
	return divs
}

// CheckModeMetamorphic runs the mode-aware metamorphic invariants. The
// paper mode delegates to CheckMetamorphic; the other modes check:
//
//   - renumber: register renaming (fresh tuple IDs) preserves the
//     dependence DAG, hence the optimal objective — including MAXLIVE,
//     which counts simultaneously-live values, not their names — and,
//     for minreg-k, preserves infeasibility;
//   - minreg-lex: the lexicographic optimum's NOP component equals the
//     paper mode's optimum (the secondary objective only breaks ties);
//   - minreg-k: relaxing k never costs NOPs (k-monotonicity), and a
//     bound no schedule can reach (k = #tuples + 1) reproduces the
//     paper-mode optimum exactly;
//   - scoreboard: a 1-entry window issuing 1 per tick is the paper's
//     in-order machine, so its optimal stall count equals the paper
//     mode's optimal NOP count.
//
// Pairs whose baseline search is curtailed are skipped — without an
// optimality proof a difference is inconclusive.
func CheckModeMetamorphic(g *dag.Graph, m *machine.Machine, mode machine.SchedMode, cfg Config, rng *rand.Rand) []Divergence {
	if mode.IsPaper() {
		return CheckMetamorphic(g, m, cfg, rng)
	}
	if mode.Validate() != nil {
		return nil // CheckPairMode already reported it
	}
	cfg = cfg.withDefaults()
	find := func(g2 *dag.Graph, m2 *machine.Machine, mode2 machine.SchedMode) (*core.Schedule, error) {
		return core.Find(g2, m2, core.Options{Sched: mode2, Lambda: cfg.Lambda})
	}

	var divs []Divergence
	report := func(name, format string, args ...any) {
		divs = append(divs, Divergence{Check: "metamorphic-" + name, Detail: fmt.Sprintf(format, args...)})
	}

	base, baseErr := find(g, m, mode)
	baseInfeasible := baseErr != nil && errors.Is(baseErr, core.ErrInfeasible)
	if baseErr != nil && !baseInfeasible {
		return nil // curtailed or failed baseline: inconclusive
	}
	if base != nil && !base.Optimal {
		return nil
	}

	// Renumber: rerun the mode on a register-renamed block.
	g2, err := dag.Build(RenumberTuples(g.Block, rng))
	if err != nil {
		report("renumber", "renamed block is invalid: %v", err)
	} else {
		s2, err2 := find(g2, m, mode)
		switch {
		case err2 != nil && errors.Is(err2, core.ErrInfeasible):
			if !baseInfeasible {
				report("renumber", "baseline is feasible (nops=%d, maxlive=%d) but the renamed block is proven infeasible",
					base.TotalNOPs, base.MaxLive)
			}
		case err2 != nil:
			// curtailed: inconclusive
		case !s2.Optimal:
			// inconclusive
		case baseInfeasible:
			report("renumber", "baseline is proven infeasible but the renamed block schedules with (nops=%d, maxlive=%d)",
				s2.TotalNOPs, s2.MaxLive)
		case s2.TotalNOPs != base.TotalNOPs,
			mode.Kind == machine.SchedMinRegLex && s2.MaxLive != base.MaxLive:
			report("renumber", "optimal objective moved from (nops=%d, maxlive=%d) to (nops=%d, maxlive=%d) under register renaming",
				base.TotalNOPs, base.MaxLive, s2.TotalNOPs, s2.MaxLive)
		}
	}

	switch mode.Kind {
	case machine.SchedMinRegLex:
		// The NOP component of the lex optimum is the paper optimum.
		if paper, err := find(g, m, machine.SchedMode{}); err == nil && paper.Optimal && base.TotalNOPs != paper.TotalNOPs {
			report("lex-nops", "minreg-lex optimum has %d NOPs but the paper optimum is %d — the tiebreak changed the primary objective",
				base.TotalNOPs, paper.TotalNOPs)
		}

	case machine.SchedMinRegK:
		// Monotonicity: k+1 admits every k-feasible schedule.
		if mode.K+1 <= machine.MaxSchedK {
			up, err := find(g, m, machine.MinRegK(mode.K+1))
			switch {
			case err != nil && errors.Is(err, core.ErrInfeasible):
				if !baseInfeasible {
					report("k-monotone", "k=%d is feasible with %d NOPs but k=%d is proven infeasible",
						mode.K, base.TotalNOPs, mode.K+1)
				}
			case err == nil && up.Optimal && !baseInfeasible && up.TotalNOPs > base.TotalNOPs:
				report("k-monotone", "relaxing k=%d to k=%d raised the optimal NOP count from %d to %d",
					mode.K, mode.K+1, base.TotalNOPs, up.TotalNOPs)
			}
		}
		// A bound above any possible MAXLIVE reproduces the paper optimum.
		loose := len(g.Block.Tuples) + 1
		if loose <= machine.MaxSchedK {
			lres, lerr := find(g, m, machine.MinRegK(loose))
			if lerr != nil && errors.Is(lerr, core.ErrInfeasible) {
				report("k-loose", "k=%d exceeds the block's value count yet is proven infeasible", loose)
			} else if lerr == nil && lres.Optimal {
				if paper, err := find(g, m, machine.SchedMode{}); err == nil && paper.Optimal && lres.TotalNOPs != paper.TotalNOPs {
					report("k-loose", "unconstraining k (k=%d) yields %d NOPs but the paper optimum is %d",
						loose, lres.TotalNOPs, paper.TotalNOPs)
				}
			}
		}

	case machine.SchedScoreboard:
		// A 1x1 scoreboard is the in-order paper machine.
		inorder, ierr := find(g, m, machine.Scoreboard(1, 1))
		if ierr == nil && inorder.Optimal {
			if paper, err := find(g, m, machine.SchedMode{}); err == nil && paper.Optimal && inorder.TotalNOPs != paper.TotalNOPs {
				report("sb-inorder", "1x1 scoreboard optimum is %d stalls but the paper optimum is %d NOPs",
					inorder.TotalNOPs, paper.TotalNOPs)
			}
		}
	}
	return divs
}
