package oracle

import (
	"math/rand"
	"reflect"
	"testing"

	"pipesched/internal/dag"
	"pipesched/internal/ir"
	"pipesched/internal/machine"
)

const metaBlock = `meta:
  1: Load #a
  2: Const 3
  3: Add @1, @2
  4: Mul @3, @1
  5: Store #b, @4
  6: Add 2, 5
  7: Store #c, @6`

func TestRenumberTuplesPreservesDAG(t *testing.T) {
	b, err := ir.ParseBlock(metaBlock)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	nb := RenumberTuples(b, rng)
	if err := nb.Validate(); err != nil {
		t.Fatalf("renumbered block invalid: %v", err)
	}
	g, err := dag.Build(b)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := dag.Build(nb)
	if err != nil {
		t.Fatalf("renumbered block does not build: %v", err)
	}
	// Node positions are untouched, so the position-indexed dependence
	// structure must be identical.
	if g.String() != ng.String() {
		t.Errorf("dependence structure changed:\noriginal:\n%s\nrenumbered:\n%s", g, ng)
	}
	// And the IDs must actually have moved (with overwhelming probability
	// over a 10^6 ID space).
	same := true
	for i := range b.Tuples {
		if b.Tuples[i].ID != nb.Tuples[i].ID {
			same = false
		}
	}
	if same {
		t.Error("renumbering left every ID unchanged")
	}
}

func TestSwapCommutativeOperandsPreservesSemantics(t *testing.T) {
	b, err := ir.ParseBlock(metaBlock)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var nb *ir.Block
	for {
		nb = SwapCommutativeOperands(b, rng)
		if nb.String() != b.String() {
			break // at least one swap actually happened
		}
	}
	if err := nb.Validate(); err != nil {
		t.Fatalf("swapped block invalid: %v", err)
	}
	env1 := ir.Env{"a": 11, "b": 0, "c": 0}
	env2 := env1.Clone()
	v1, err1 := ir.Exec(b, env1)
	v2, err2 := ir.Exec(nb, env2)
	if err1 != nil || err2 != nil {
		t.Fatalf("exec failed: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Errorf("tuple values diverged: %v vs %v", v1, v2)
	}
	if !reflect.DeepEqual(env1, env2) {
		t.Errorf("final environments diverged: %v vs %v", env1, env2)
	}
}

func TestSwapCommutativeOperandsNeverTouchesNonCommutative(t *testing.T) {
	b, err := ir.ParseBlock(`nc:
  1: Load #a
  2: Sub @1, 3
  3: Div @2, 2
  4: Store #b, @3`)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 32; i++ {
		if got := SwapCommutativeOperands(b, rng).String(); got != b.String() {
			t.Fatalf("non-commutative block mutated:\n%s", got)
		}
	}
}

// opTimings collects the multiset of (latency, enqueue) pairs an op's
// pipeline set offers — the only timing-relevant view of the op map.
func opTimings(m *machine.Machine) map[ir.Op][][2]int {
	out := map[ir.Op][][2]int{}
	for op, ids := range m.OpMap {
		for _, id := range ids {
			out[op] = append(out[op], [2]int{m.Latency(id), m.EnqueueTime(id)})
		}
	}
	return out
}

func TestPipelineTransformsPreserveTiming(t *testing.T) {
	for _, m := range []*machine.Machine{
		machine.SimulationMachine(),
		machine.ExampleMachine(),
		machine.Random(rand.New(rand.NewSource(3)), machine.Params{}),
	} {
		rng := rand.New(rand.NewSource(4))
		base := opTimings(m)

		mp, err := PermutePipelines(m, rng)
		if err != nil {
			t.Fatalf("%s: permute: %v", m.Name, err)
		}
		if err := mp.Validate(); err != nil {
			t.Fatalf("%s: permuted machine invalid: %v", m.Name, err)
		}
		if !reflect.DeepEqual(opTimings(mp), base) {
			t.Errorf("%s: row permutation changed op timings", m.Name)
		}

		mr, err := RelabelPipelines(m, rng)
		if err != nil {
			t.Fatalf("%s: relabel: %v", m.Name, err)
		}
		if err := mr.Validate(); err != nil {
			t.Fatalf("%s: relabeled machine invalid: %v", m.Name, err)
		}
		if !reflect.DeepEqual(opTimings(mr), base) {
			t.Errorf("%s: relabeling changed op timings", m.Name)
		}
	}
}

func TestCheckMetamorphicCleanOnPresets(t *testing.T) {
	b, err := ir.ParseBlock(metaBlock)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dag.Build(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*machine.Machine{
		machine.SimulationMachine(),
		machine.ExampleMachine(),
		machine.DeepMachine(),
	} {
		rng := rand.New(rand.NewSource(9))
		if divs := CheckMetamorphic(g, m, Config{}, rng); len(divs) != 0 {
			t.Errorf("%s: unexpected metamorphic divergences: %v", m.Name, divs)
		}
	}
}
