package oracle

import (
	"testing"

	"pipesched/internal/ir"
)

func parseBlock(t *testing.T, text string) *ir.Block {
	t.Helper()
	b, err := ir.ParseBlock(text)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestShrinkToSingleTuple(t *testing.T) {
	b := parseBlock(t, `big:
  1: Load #a
  2: Add @1, 1
  3: Store #b, @2
  4: Mul 2, 3
  5: Store #c, @4`)
	containsMul := func(cand *ir.Block) bool {
		for _, tp := range cand.Tuples {
			if tp.Op == ir.Mul {
				return true
			}
		}
		return false
	}
	min := Shrink(b, containsMul)
	if min.Len() != 1 || min.Tuples[0].Op != ir.Mul {
		t.Errorf("shrink did not reach the 1-tuple minimum:\n%s", min)
	}
	if b.Len() != 5 {
		t.Error("Shrink mutated its input block")
	}
}

func TestShrinkRespectsReferences(t *testing.T) {
	// The Mul references the Const, so the Const can never be deleted
	// while the predicate still needs the Mul: the minimum is two tuples.
	b := parseBlock(t, `refs:
  1: Load #a
  2: Store #b, @1
  3: Const 9
  4: Mul @3, @3
  5: Store #c, @4`)
	containsMul := func(cand *ir.Block) bool {
		for _, tp := range cand.Tuples {
			if tp.Op == ir.Mul {
				return true
			}
		}
		return false
	}
	min := Shrink(b, containsMul)
	if min.Len() != 2 {
		t.Fatalf("want 2-tuple minimum (Const + Mul), got:\n%s", min)
	}
	if min.Tuples[0].Op != ir.Const || min.Tuples[1].Op != ir.Mul {
		t.Errorf("wrong survivors:\n%s", min)
	}
	if err := min.Validate(); err != nil {
		t.Errorf("shrunk block invalid: %v", err)
	}
}

func TestShrinkStopsWhenNothingDeletable(t *testing.T) {
	b := parseBlock(t, `fixed:
  1: Load #a
  2: Neg @1
  3: Store #b, @2`)
	// The predicate demands the full block, so no deletion survives.
	full := func(cand *ir.Block) bool { return cand.Len() == 3 }
	if min := Shrink(b, full); min.Len() != 3 {
		t.Errorf("shrink deleted below the predicate's floor:\n%s", min)
	}
}
