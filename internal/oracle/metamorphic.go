package oracle

import (
	"fmt"
	"math/rand"

	"pipesched/internal/core"
	"pipesched/internal/dag"
	"pipesched/internal/ir"
	"pipesched/internal/machine"
)

// The metamorphic invariants: transformations of the block or the
// machine description that provably cannot change the optimal NOP cost.
// A scheduler that accidentally depends on tuple reference numbers,
// operand order of commutative operations, pipeline-table row order, or
// the spelling of pipeline identifiers will diverge here even on blocks
// too large for the exhaustive reference.

// RenumberTuples returns a copy of b whose tuple IDs are replaced by
// fresh random unique positive IDs (references remapped to match).
// Positions, operations and dependences are untouched, so the dependence
// DAG — and therefore the optimal cost — is identical.
func RenumberTuples(b *ir.Block, rng *rand.Rand) *ir.Block {
	remap := make(map[int]int, len(b.Tuples))
	used := make(map[int]bool, len(b.Tuples))
	for _, t := range b.Tuples {
		for {
			id := 1 + rng.Intn(1_000_000)
			if !used[id] {
				used[id] = true
				remap[t.ID] = id
				break
			}
		}
	}
	nb := &ir.Block{Label: b.Label, Tuples: make([]ir.Tuple, len(b.Tuples))}
	for i, t := range b.Tuples {
		nt := t
		nt.ID = remap[t.ID]
		if nt.A.Kind == ir.RefOperand {
			nt.A.Ref = remap[nt.A.Ref]
		}
		if nt.B.Kind == ir.RefOperand {
			nt.B.Ref = remap[nt.B.Ref]
		}
		nb.Tuples[i] = nt
	}
	return nb
}

// SwapCommutativeOperands returns a copy of b with the operands of a
// random subset of commutative tuples (Add, Mul) exchanged. The value
// computed and the dependence edges are identical, so the optimal cost
// must not move.
func SwapCommutativeOperands(b *ir.Block, rng *rand.Rand) *ir.Block {
	nb := b.Clone()
	for i, t := range nb.Tuples {
		if t.Op.IsCommutative() && rng.Intn(2) == 0 {
			nb.Tuples[i].A, nb.Tuples[i].B = t.B, t.A
		}
	}
	return nb
}

// PermutePipelines returns a machine whose pipeline-table rows are
// reordered (identifiers, latencies and the op map untouched). Every
// lookup is by pipeline ID, so row order is presentation only.
func PermutePipelines(m *machine.Machine, rng *rand.Rand) (*machine.Machine, error) {
	perm := rng.Perm(len(m.Pipelines))
	pipes := make([]machine.Pipeline, len(m.Pipelines))
	for i, j := range perm {
		pipes[i] = m.Pipelines[j]
	}
	opMap := make(map[ir.Op][]int, len(m.OpMap))
	for op, ids := range m.OpMap {
		opMap[op] = append([]int(nil), ids...)
	}
	return machine.New(m.Name+"-rowperm", pipes, opMap)
}

// RelabelPipelines returns a machine with pipeline identifiers renamed
// by a random bijection, applied consistently to the pipeline table and
// the op map (preserving each op's list order, so fixed-assignment
// choices stay on the same physical pipeline). Identifier spelling
// carries no timing information, so the optimal cost is invariant.
func RelabelPipelines(m *machine.Machine, rng *rand.Rand) (*machine.Machine, error) {
	n := len(m.Pipelines)
	perm := rng.Perm(n)
	relabel := make(map[int]int, n)
	for i, p := range m.Pipelines {
		relabel[p.ID] = perm[i] + 1
	}
	pipes := make([]machine.Pipeline, n)
	for i, p := range m.Pipelines {
		np := p
		np.ID = relabel[p.ID]
		pipes[i] = np
	}
	opMap := make(map[ir.Op][]int, len(m.OpMap))
	for op, ids := range m.OpMap {
		nids := make([]int, len(ids))
		for i, id := range ids {
			if id == machine.NoPipeline {
				nids[i] = id
				continue
			}
			nids[i] = relabel[id]
		}
		opMap[op] = nids
	}
	return machine.New(m.Name+"-relabel", pipes, opMap)
}

// CheckMetamorphic runs the metamorphic invariants on one (block,
// machine) pair: it establishes the baseline optimal cost, applies each
// cost-preserving transformation, re-runs the search, and reports any
// cost movement. Pairs whose baseline search is curtailed are skipped —
// without an optimality proof a cost difference is inconclusive.
func CheckMetamorphic(g *dag.Graph, m *machine.Machine, cfg Config, rng *rand.Rand) []Divergence {
	cfg = cfg.withDefaults()
	base, err := core.Find(g, m, core.Options{Lambda: cfg.Lambda})
	if err != nil || !base.Optimal {
		return nil
	}

	var divs []Divergence
	check := func(name string, b2 *ir.Block, m2 *machine.Machine) {
		g2, err := dag.Build(b2)
		if err != nil {
			divs = append(divs, Divergence{
				Check:  "metamorphic-" + name,
				Detail: fmt.Sprintf("transformed block is invalid: %v", err),
			})
			return
		}
		s2, err := core.Find(g2, m2, core.Options{Lambda: cfg.Lambda})
		if err != nil {
			divs = append(divs, Divergence{
				Check:  "metamorphic-" + name,
				Detail: fmt.Sprintf("search failed on transformed pair: %v", err),
			})
			return
		}
		if !s2.Optimal {
			return // budget asymmetry: inconclusive, not a divergence
		}
		if s2.TotalNOPs != base.TotalNOPs {
			divs = append(divs, Divergence{
				Check: "metamorphic-" + name,
				Detail: fmt.Sprintf("optimal cost moved from %d to %d under a cost-preserving transformation",
					base.TotalNOPs, s2.TotalNOPs),
			})
		}
	}

	check("renumber", RenumberTuples(g.Block, rng), m)
	check("commute", SwapCommutativeOperands(g.Block, rng), m)
	if mp, err := PermutePipelines(m, rng); err == nil {
		check("pipe-order", g.Block, mp)
	} else {
		divs = append(divs, Divergence{Check: "metamorphic-pipe-order",
			Detail: fmt.Sprintf("row permutation produced invalid machine: %v", err)})
	}
	if mr, err := RelabelPipelines(m, rng); err == nil {
		check("pipe-relabel", g.Block, mr)
	} else {
		divs = append(divs, Divergence{Check: "metamorphic-pipe-relabel",
			Detail: fmt.Sprintf("relabeling produced invalid machine: %v", err)})
	}
	return divs
}
