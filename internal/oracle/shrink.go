package oracle

import "pipesched/internal/ir"

// Shrink reduces a failing block to a 1-minimal counterexample: it
// repeatedly deletes single tuples (only deletions that keep the block
// structurally valid — a tuple still referenced by a later tuple cannot
// go) while the keep predicate continues to hold, until no single
// deletion preserves the failure. The predicate receives candidate
// blocks that always pass ir.Block.Validate.
//
// Minimal counterexamples are what make a soak failure debuggable: a
// 40-tuple divergence usually shrinks to a handful of tuples that name
// the interacting pruning rule and hazard directly.
func Shrink(b *ir.Block, keep func(*ir.Block) bool) *ir.Block {
	cur := b.Clone()
	for {
		shrunk := false
		for i := 0; i < len(cur.Tuples); i++ {
			cand := deleteTuple(cur, i)
			if cand == nil || cand.Validate() != nil {
				continue
			}
			if keep(cand) {
				cur = cand
				shrunk = true
				// Position i now holds the next tuple; re-examine it.
				i--
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// deleteTuple returns b without position i, or nil when a later tuple
// references the deleted result (deletion would dangle).
func deleteTuple(b *ir.Block, i int) *ir.Block {
	id := b.Tuples[i].ID
	for j, t := range b.Tuples {
		if j == i {
			continue
		}
		for _, r := range t.Refs() {
			if r == id {
				return nil
			}
		}
	}
	nb := &ir.Block{Label: b.Label}
	nb.Tuples = append(nb.Tuples, b.Tuples[:i]...)
	nb.Tuples = append(nb.Tuples, b.Tuples[i+1:]...)
	return nb
}
