package oracle

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pipesched/internal/core"
	"pipesched/internal/machine"
)

// soakModes is the mode matrix the oracle must keep clean: both
// register-pressure objectives (a tight and a loose k) and several
// scoreboard geometries including the degenerate in-order one.
var soakModes = []string{"minreg-lex", "minreg-k=2", "minreg-k=4", "scoreboard=1x1", "scoreboard=4x2"}

// TestCheckPairModeCleanOnPresets: every mode must come back clean on
// the hand-written blocks the paper suite uses, on the paper's own
// simulation machine.
func TestCheckPairModeCleanOnPresets(t *testing.T) {
	blocks := []string{
		`chain:
  1: Load #a
  2: Mul @1, @1
  3: Add @2, 4
  4: Store #b, @3`,
		`wide:
  1: Load #a
  2: Load #b
  3: Mul @1, @1
  4: Add @2, 7
  5: Sub @3, @4
  6: Store #c, @5`,
	}
	m := machine.SimulationMachine()
	for _, text := range blocks {
		g := mustGraph(t, text)
		for _, ms := range soakModes {
			mode, err := machine.ParseSchedMode(ms)
			if err != nil {
				t.Fatal(err)
			}
			if divs := CheckPairMode(g, m, mode, Config{}); len(divs) > 0 {
				t.Errorf("%s on %q: unexpected divergences: %v", ms, g.Block.Label, divs)
			}
			if divs := CheckModeMetamorphic(g, m, mode, Config{}, rand.New(rand.NewSource(1))); len(divs) > 0 {
				t.Errorf("%s on %q: metamorphic divergences: %v", ms, g.Block.Label, divs)
			}
		}
	}
}

// TestCheckPairModeInfeasible: a chain that needs MAXLIVE 2 must be
// proven infeasible at k=1 by every candidate, with no divergence — the
// infeasibility agreement is itself a check.
func TestCheckPairModeInfeasible(t *testing.T) {
	g := mustGraph(t, `pressure:
  1: Load #a
  2: Load #b
  3: Add @1, @2
  4: Store #c, @3`)
	m := machine.SimulationMachine()
	if divs := CheckPairMode(g, m, machine.MinRegK(1), Config{}); len(divs) > 0 {
		t.Fatalf("infeasible pair reported divergences: %v", divs)
	}
	if _, err := core.Find(g, m, core.Options{Sched: machine.MinRegK(1)}); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible at k=1, got %v", err)
	}
	if divs := CheckModeMetamorphic(g, m, machine.MinRegK(1), Config{}, rand.New(rand.NewSource(2))); len(divs) > 0 {
		t.Fatalf("infeasible metamorphic divergences: %v", divs)
	}
}

// TestCheckPressureScheduleCatchesLies: tampering with a pressure-mode
// schedule's claims must trip the independent re-derivations.
func TestCheckPressureScheduleCatchesLies(t *testing.T) {
	g := mustGraph(t, `lie:
  1: Load #a
  2: Mul @1, @1
  3: Load #b
  4: Add @2, @3
  5: Store #c, @4`)
	m := machine.SimulationMachine()
	honest, err := core.Find(g, m, core.Options{Sched: machine.MinRegLex()})
	if err != nil {
		t.Fatal(err)
	}
	if divs := checkPressureSchedule(g, m, machine.MinRegLex(), "honest", honest); len(divs) > 0 {
		t.Fatalf("honest schedule reported: %v", divs)
	}
	lied := *honest
	lied.MaxLive++
	if divs := checkPressureSchedule(g, m, machine.MinRegLex(), "liar", &lied); !hasCheck(divs, "pressure-verify", "liar") {
		t.Fatalf("inflated MAXLIVE claim not caught: %v", divs)
	}
	// A schedule whose true pressure violates the mode bound must trip
	// pressure-bound even when the MaxLive field is honest.
	k := honest.MaxLive - 1
	if k >= 1 {
		if divs := checkPressureSchedule(g, m, machine.MinRegK(k), "overk", honest); !hasCheck(divs, "pressure-bound", "overk") {
			t.Fatalf("bound violation not caught at k=%d: %v", k, divs)
		}
	}
}

// TestCheckScoreboardScheduleCatchesLies: tampering with a
// scoreboard-mode schedule must trip the forward simulator replay and
// the shape checks.
func TestCheckScoreboardScheduleCatchesLies(t *testing.T) {
	g := mustGraph(t, `lie:
  1: Load #a
  2: Mul @1, @1
  3: Load #b
  4: Add @2, @3
  5: Store #c, @4`)
	m := machine.SimulationMachine()
	mode := machine.Scoreboard(4, 2)
	honest, err := core.Find(g, m, core.Options{Sched: mode})
	if err != nil {
		t.Fatal(err)
	}
	if divs := checkScoreboardSchedule(g, m, mode, "honest", honest); len(divs) > 0 {
		t.Fatalf("honest schedule reported: %v", divs)
	}

	ticks := *honest
	ticks.IssueTicks = append([]int(nil), honest.IssueTicks...)
	ticks.IssueTicks[len(ticks.IssueTicks)-1]++
	if divs := checkScoreboardSchedule(g, m, mode, "ticks", &ticks); !hasCheck(divs, "sim-verify", "ticks") {
		t.Fatalf("perturbed issue ticks not caught: %v", divs)
	}

	stalls := *honest
	stalls.TotalNOPs++
	if divs := checkScoreboardSchedule(g, m, mode, "stalls", &stalls); !hasCheck(divs, "sim-verify", "stalls") {
		t.Fatalf("inflated stall claim not caught: %v", divs)
	}

	padded := *honest
	padded.Eta = append([]int(nil), honest.Eta...)
	padded.Eta[0] = 1
	if divs := checkScoreboardSchedule(g, m, mode, "padded", &padded); !hasCheck(divs, "schedule-legal", "padded") {
		t.Fatalf("NOP padding not caught: %v", divs)
	}
}

// TestRunModeSmoke: the Run driver must come back clean for every mode
// in the matrix on a seeded batch of generated blocks, and artifacts (if
// any) must carry the canonical mode. This is the PR-gating slice of the
// nightly per-mode soak.
func TestRunModeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mode soak smoke skipped in -short")
	}
	for _, ms := range soakModes {
		ms := ms
		t.Run(ms, func(t *testing.T) {
			t.Parallel()
			sum, err := Run(RunConfig{
				Blocks:        12,
				Machines:      4,
				Seed:          97,
				MaxStatements: 5,
				Mode:          ms,
				MachineParams: machine.Params{SingleAssignment: true},
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if sum.Divergences != 0 {
				for _, a := range sum.Artifacts {
					t.Errorf("artifact: %s (mode %q)\n%s", a.Divergence, a.Mode, a.ShrunkText)
				}
				t.Fatalf("%d divergences: %s", sum.Divergences, sum.Checks())
			}
			if sum.Pairs != 12 {
				t.Fatalf("checked %d pairs, want 12", sum.Pairs)
			}
		})
	}
}

// TestRunRejectsBadMode: a hostile mode string is an infrastructure
// error classified under the machine-description error family, not a
// silent fallback to the paper mode.
func TestRunRejectsBadMode(t *testing.T) {
	_, err := Run(RunConfig{Blocks: 1, Mode: "minreg-k=banana"})
	if !errors.Is(err, machine.ErrInvalid) {
		t.Fatalf("got %v, want machine.ErrInvalid", err)
	}
}

// TestModeMetamorphicRandom: the metamorphic invariants must hold on
// randomly generated pairs for every mode, under the same generators the
// soak uses. Run with -race in CI.
func TestModeMetamorphicRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic sweep skipped in -short")
	}
	for _, ms := range soakModes {
		mode, err := machine.ParseSchedMode(ms)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			sum, runErr := Run(RunConfig{
				Blocks:        1,
				Machines:      1,
				Seed:          int64(1000 + i),
				MaxStatements: 4,
				Mode:          ms,
				Check:         Config{DisableExhaustive: true},
			})
			if runErr != nil {
				t.Fatalf("%s seed %d: %v", ms, i, runErr)
			}
			if sum.Divergences != 0 {
				t.Fatalf("%s seed %d: %s", ms, i, sum.Checks())
			}
		}
		_ = mode
	}
}

// TestModeArtifactModeField: forcing a divergence through an impossible
// mode parameter exercises the artifact path end to end. A window/width
// pair is valid machine-wide, so instead tamper via a broken paper
// candidate and confirm paper artifacts carry no mode while mode
// artifacts carry the canonical string (covered above); here we just
// pin the canonicalization.
func TestModeArtifactModeField(t *testing.T) {
	sum, err := Run(RunConfig{
		Blocks:             2,
		Machines:           1,
		Seed:               5,
		MaxStatements:      3,
		Mode:               "scoreboard", // default geometry, canonicalizes to 8x2
		DisableMetamorphic: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum.Divergences != 0 {
		t.Fatalf("unexpected divergences: %s", sum.Checks())
	}
	// Canonicalization is observable through the artifact writer only on
	// failure; assert it directly instead.
	mode, _ := machine.ParseSchedMode("scoreboard")
	if got := mode.String(); got != fmt.Sprintf("scoreboard=%dx%d", 8, 2) {
		t.Fatalf("default scoreboard canonical form %q", got)
	}
}
