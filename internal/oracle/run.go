package oracle

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"pipesched/internal/dag"
	"pipesched/internal/ir"
	"pipesched/internal/machine"
	"pipesched/internal/synth"
)

// RunConfig configures one differential soak: Blocks synthetic blocks
// paired round-robin with Machines fuzzed machine models, every pair
// pushed through the full check suite.
type RunConfig struct {
	Blocks   int   // generated blocks (default 100)
	Machines int   // generated machines (default 10); index 0 is the paper's simulation machine
	Seed     int64 // master seed; every block, machine and transformation derives from it
	Workers  int   // concurrent pairs (default GOMAXPROCS)

	// MaxStatements bounds generated block size in source statements
	// (tuple counts land around 2.5-3x that). Default 7.
	MaxStatements int

	// Mode selects the scheduler mode under test, in
	// machine.ParseSchedMode's textual form ("" = paper). Non-paper
	// modes run CheckPairMode / CheckModeMetamorphic instead of the
	// paper suite.
	Mode string

	// Machine bounds for machine.Random.
	MachineParams machine.Params

	// Check tunes the per-pair suite.
	Check Config

	// DisableMetamorphic skips the metamorphic invariants (they re-run
	// the search several times per pair).
	DisableMetamorphic bool

	// Artifacts, when non-nil, receives one JSON line per divergence
	// with full repro context (block text, machine JSON, shrunken
	// counterexample). Writes are serialized.
	Artifacts io.Writer

	// Progress, when non-nil, is called after each block finishes.
	Progress func(done, total int)
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Blocks <= 0 {
		c.Blocks = 100
	}
	if c.Machines <= 0 {
		c.Machines = 10
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxStatements <= 0 {
		c.MaxStatements = 7
	}
	return c
}

// Artifact is one JSONL failure record: the divergence plus everything
// needed to reproduce it without the generators.
type Artifact struct {
	Divergence
	Seed         int64           `json:"seed"`           // the run's master seed
	Mode         string          `json:"mode,omitempty"` // scheduler mode under test (canonical form; empty = paper)
	BlockIndex   int             `json:"block_index"`    // which generated block
	MachineIndex int             `json:"machine_index"`  // which generated machine
	BlockText    string          `json:"block_text"`     // full failing block, tuple form
	ShrunkText   string          `json:"shrunk_text"`    // 1-minimal counterexample, tuple form
	MachineJSON  json.RawMessage `json:"machine_json"`   // machine description
}

// Summary aggregates one soak run.
type Summary struct {
	Pairs       int            // (block, machine) pairs checked
	Tuples      int            // total tuples scheduled
	Divergences int            // total findings
	PerCheck    map[string]int // findings by check name
	Artifacts   []Artifact     // every finding, with repro context
}

// Checks renders the per-check counts deterministically.
func (s *Summary) Checks() string {
	if len(s.PerCheck) == 0 {
		return "none"
	}
	names := make([]string, 0, len(s.PerCheck))
	for n := range s.PerCheck {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", n, s.PerCheck[n])
	}
	return out
}

// blockSeed derives the per-block RNG seed. Every random decision for
// block i (its parameters, its text, its metamorphic transformations)
// flows from this, so a finding replays from (Seed, BlockIndex) alone.
func blockSeed(master int64, i int) int64 {
	return master + int64(i)*1_000_003
}

// machineSeed derives the per-machine RNG seed (offset keeps the machine
// stream disjoint from the block stream).
func machineSeed(master int64, j int) int64 {
	return master + 777_767 + int64(j)*10_000_019
}

// Machines materializes the run's machine set: index 0 is the paper's
// simulation machine (so every soak covers the preset the reproduction
// actually targets), the rest are fuzzed.
func (c RunConfig) machines() []*machine.Machine {
	c = c.withDefaults()
	ms := make([]*machine.Machine, c.Machines)
	ms[0] = machine.SimulationMachine()
	for j := 1; j < c.Machines; j++ {
		ms[j] = machine.Random(rand.New(rand.NewSource(machineSeed(c.Seed, j))), c.MachineParams)
	}
	return ms
}

// Run executes the soak and returns the aggregate summary. The error is
// non-nil only for infrastructure failures (generation or artifact I/O);
// scheduler divergences are reported in the Summary, not as an error.
func Run(cfg RunConfig) (*Summary, error) {
	cfg = cfg.withDefaults()
	mode, err := machine.ParseSchedMode(cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	if !mode.IsPaper() {
		cfg.Mode = mode.String() // canonical form in every artifact
	}
	machines := cfg.machines()

	sum := &Summary{PerCheck: map[string]int{}}
	var (
		mu       sync.Mutex
		firstErr error
		done     int
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				block, mi, divs, err := checkIndex(cfg, machines, i)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("oracle: block %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				sum.Pairs++
				sum.Tuples += block.Len()
				for _, d := range divs {
					sum.Divergences++
					sum.PerCheck[d.Check]++
				}
				if len(divs) > 0 {
					arts, aerr := buildArtifacts(cfg, machines, i, mi, block, divs)
					sum.Artifacts = append(sum.Artifacts, arts...)
					if aerr != nil && firstErr == nil {
						firstErr = aerr
					}
				}
				done++
				if cfg.Progress != nil {
					cfg.Progress(done, cfg.Blocks)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Blocks; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return sum, firstErr
}

// checkIndex generates block i, pairs it with its round-robin machine
// and runs the suite. Deterministic in (cfg.Seed, i).
func checkIndex(cfg RunConfig, machines []*machine.Machine, i int) (*ir.Block, int, []Divergence, error) {
	rng := rand.New(rand.NewSource(blockSeed(cfg.Seed, i)))
	b, err := synth.Generate(rng, synth.RandomParams(rng, cfg.MaxStatements))
	if err != nil {
		return nil, 0, nil, err
	}
	mi := i % len(machines)
	divs, err := checkBlock(cfg, b.IR, machines[mi], rng)
	return b.IR, mi, divs, err
}

// checkBlock runs the differential suite plus (optionally) the
// metamorphic invariants on one pre-generated block, dispatching on the
// configured scheduler mode.
func checkBlock(cfg RunConfig, block *ir.Block, m *machine.Machine, rng *rand.Rand) ([]Divergence, error) {
	g, err := dag.Build(block)
	if err != nil {
		return nil, fmt.Errorf("generated block does not build: %w", err)
	}
	mode, err := machine.ParseSchedMode(cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("bad scheduler mode: %w", err)
	}
	divs := CheckPairMode(g, m, mode, cfg.Check)
	if !cfg.DisableMetamorphic {
		divs = append(divs, CheckModeMetamorphic(g, m, mode, cfg.Check, rng)...)
	}
	return divs, nil
}

// buildArtifacts shrinks the failing block once per distinct check name
// and emits one JSONL record per divergence. Called with the run mutex
// held (artifact writes must not interleave).
func buildArtifacts(cfg RunConfig, machines []*machine.Machine, i, mi int, block *ir.Block, divs []Divergence) ([]Artifact, error) {
	m := machines[mi]
	mjson, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("oracle: marshal machine %d: %w", mi, err)
	}
	shrunkFor := map[string]string{}
	var arts []Artifact
	var werr error
	for _, d := range divs {
		shrunk, ok := shrunkFor[d.Check]
		if !ok {
			shrunk = shrinkFor(cfg, block, m, d.Check, i)
			shrunkFor[d.Check] = shrunk
		}
		a := Artifact{
			Divergence:   d,
			Seed:         cfg.Seed,
			Mode:         cfg.Mode,
			BlockIndex:   i,
			MachineIndex: mi,
			BlockText:    block.String(),
			ShrunkText:   shrunk,
			MachineJSON:  mjson,
		}
		arts = append(arts, a)
		if cfg.Artifacts != nil {
			line, err := json.Marshal(a)
			if err == nil {
				_, err = cfg.Artifacts.Write(append(line, '\n'))
			}
			if err != nil && werr == nil {
				werr = fmt.Errorf("oracle: write artifact: %w", err)
			}
		}
	}
	return arts, werr
}

// shrinkFor reduces block to a 1-minimal counterexample that still
// triggers a divergence with the given check name on machine m. The
// shrink predicate re-derives its metamorphic RNG from the block seed on
// every probe, so the transformation stream is identical at every size.
func shrinkFor(cfg RunConfig, block *ir.Block, m *machine.Machine, check string, i int) string {
	min := Shrink(block, func(cand *ir.Block) bool {
		rng := rand.New(rand.NewSource(blockSeed(cfg.Seed, i) ^ 0x5eed))
		divs, err := checkBlock(cfg, cand, m, rng)
		if err != nil {
			return false
		}
		for _, d := range divs {
			if d.Check == check {
				return true
			}
		}
		return false
	})
	return min.String()
}
