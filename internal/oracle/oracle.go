// Package oracle is the differential-testing and metamorphic-invariant
// subsystem that proves the schedulers agree with their own ground
// truths. The paper's central claim is provable optimality; this package
// is the machinery that keeps the implementation honest about it, so the
// search hot path (pruning rules, traversal order, parallel work
// stealing) can be refactored freely and every change gated on a
// differential soak.
//
// One unit of work is a (block, machine) pair. The check suite:
//
//   - optimality differential: several independently-configured searches
//     (sequential, parallel, ablated pruning, extended pruning) must
//     agree on the optimal NOP cost whenever they claim optimality, and
//     the exhaustive reference enumerations must confirm that cost on
//     blocks small enough to enumerate;
//   - upper bound: no search may ever return a schedule costlier than
//     the priced list-scheduling seed it started from;
//   - legality/semantics: every emitted schedule must be a topological
//     order of the DAG, hazard-free under all three architectural delay
//     mechanisms, and simulate to exactly the cost the search claimed
//     (sim.Verify);
//   - certificates: every root lower bound must be admissible (never
//     above a proven optimum) and every claimed optimality gap sound (a
//     gap of 0 really is the optimum, a gap of k really brackets it);
//   - metamorphic invariants (metamorphic.go): cost-preserving
//     transformations of the block and the machine description must
//     leave the optimal cost unchanged.
//
// Run (run.go) drives the suite at scale over synth-generated blocks and
// machine.Random machines, shrinking failures to minimal counterexamples
// and emitting JSONL repro artifacts.
package oracle

import (
	"fmt"

	"pipesched/internal/core"
	"pipesched/internal/dag"
	"pipesched/internal/exhaustive"
	"pipesched/internal/listsched"
	"pipesched/internal/machine"
	"pipesched/internal/nopins"
	"pipesched/internal/sim"
)

// Divergence is one oracle finding: a named check that failed on a
// (block, machine) pair, with enough detail to understand the mismatch.
// The repro context (block text, machine JSON, seed) is attached by the
// Run driver, which sees the generators.
type Divergence struct {
	Check     string `json:"check"`               // which oracle check failed
	Candidate string `json:"candidate,omitempty"` // offending scheduler, when one is implicated
	Detail    string `json:"detail"`              // human-readable mismatch description
}

func (d Divergence) String() string {
	if d.Candidate != "" {
		return fmt.Sprintf("%s[%s]: %s", d.Check, d.Candidate, d.Detail)
	}
	return fmt.Sprintf("%s: %s", d.Check, d.Detail)
}

// Candidate is one scheduler under test. All candidates must agree on
// the optimal cost whenever they claim optimality; adding a candidate
// (a new traversal order, a new pruning rule) puts it under the same
// contract automatically.
type Candidate struct {
	Name string
	Run  func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error)
}

// Config tunes the per-pair check suite. The zero value selects the
// defaults shown on each field.
type Config struct {
	// Lambda is the per-candidate search budget (Ω invocations). A
	// curtailed candidate keeps its legality checks but abstains from the
	// optimality differential. Default 200 000.
	Lambda int64

	// Workers is the fan-out of the parallel search candidate. Default 4.
	Workers int

	// ExhaustiveOrders caps the legal-schedule enumeration used as the
	// optimality reference: blocks with more topological orders than this
	// skip the exhaustive differential (the search candidates still
	// cross-check each other). Default 20 000.
	ExhaustiveOrders int64

	// ExhaustivePermutations caps the block size for the full n!
	// permutation search (the paper's naive baseline). Default 7 (5 040
	// permutations).
	ExhaustivePermutations int

	// DisableExhaustive skips both reference enumerations.
	DisableExhaustive bool

	// Candidates overrides the scheduler set under test; nil selects
	// DefaultCandidates(Lambda, Workers). Tests inject broken schedulers
	// here to prove the oracle catches them.
	Candidates []Candidate
}

func (c Config) withDefaults() Config {
	if c.Lambda <= 0 {
		c.Lambda = 200_000
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.ExhaustiveOrders <= 0 {
		c.ExhaustiveOrders = 20_000
	}
	if c.ExhaustivePermutations <= 0 {
		c.ExhaustivePermutations = 7
	}
	return c
}

func (c Config) candidates() []Candidate {
	if c.Candidates != nil {
		return c.Candidates
	}
	return DefaultCandidates(c.Lambda, c.Workers)
}

// DefaultCandidates returns the standard differential set: the plain
// sequential search, the parallel search (shared incumbent, work fanned
// across goroutines), ablations with the lower-bound engine and the
// dominance memo disabled individually and together (the last is the
// paper-faithful prune set), and the search with the extended strong
// equivalence filter. Each explores the space differently; all must land
// on the same optimal cost.
func DefaultCandidates(lambda int64, workers int) []Candidate {
	opts := func(mut func(*core.Options)) core.Options {
		o := core.Options{Lambda: lambda}
		if mut != nil {
			mut(&o)
		}
		return o
	}
	return []Candidate{
		{Name: "find", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			return core.Find(g, m, opts(nil))
		}},
		{Name: "find-parallel", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			return core.FindParallel(g, m, opts(nil), workers)
		}},
		{Name: "find-nolowerbound", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			return core.Find(g, m, opts(func(o *core.Options) { o.DisableLowerBound = true }))
		}},
		{Name: "find-nomemo", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			return core.Find(g, m, opts(func(o *core.Options) { o.DisableMemo = true }))
		}},
		{Name: "find-paper", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			// The paper's own prune set [5a]-[5c] + α-β, with the bound
			// engine and memo table both off — the ground truth the
			// accelerated searches must not diverge from.
			return core.Find(g, m, opts(func(o *core.Options) {
				o.DisableLowerBound = true
				o.DisableMemo = true
			}))
		}},
		{Name: "find-strongequiv", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			return core.Find(g, m, opts(func(o *core.Options) { o.StrongEquivalence = true }))
		}},
	}
}

// CheckPair runs the full differential suite on one (block, machine)
// pair and returns every divergence found (nil/empty means the pair is
// clean). The block is taken through g; it must already be validated
// (dag.Build validates).
func CheckPair(g *dag.Graph, m *machine.Machine, cfg Config) []Divergence {
	cfg = cfg.withDefaults()
	var divs []Divergence

	// The list-scheduling seed is the upper bound: the search starts from
	// it, so returning anything costlier is a hard bug (the incumbent can
	// only improve).
	seedOrder := listsched.Schedule(g, listsched.ByHeight)
	seed, err := nopins.NewEvaluator(g, m, nopins.AssignFixed).EvaluateOrder(seedOrder)
	if err != nil {
		return append(divs, Divergence{
			Check:  "seed-illegal",
			Detail: fmt.Sprintf("list schedule is not a legal order: %v", err),
		})
	}

	type outcome struct {
		name string
		s    *core.Schedule
	}
	var outs []outcome
	for _, c := range cfg.candidates() {
		s, err := c.Run(g, m)
		if err != nil {
			divs = append(divs, Divergence{
				Check: "candidate-error", Candidate: c.Name,
				Detail: err.Error(),
			})
			continue
		}
		outs = append(outs, outcome{c.Name, s})
		divs = append(divs, checkSchedule(g, m, c.Name, s)...)
		if s.TotalNOPs > seed.TotalNOPs {
			divs = append(divs, Divergence{
				Check: "upper-bound", Candidate: c.Name,
				Detail: fmt.Sprintf("schedule costs %d NOPs, list-schedule seed costs %d",
					s.TotalNOPs, seed.TotalNOPs),
			})
		}
	}

	// Optimality differential: candidates claiming optimality must agree,
	// and a curtailed candidate must never beat a proven optimum.
	bestOpt, bestName := -1, ""
	for _, o := range outs {
		if !o.s.Optimal {
			continue
		}
		if bestOpt < 0 {
			bestOpt, bestName = o.s.TotalNOPs, o.name
			continue
		}
		if o.s.TotalNOPs != bestOpt {
			divs = append(divs, Divergence{
				Check: "optimal-agree", Candidate: o.name,
				Detail: fmt.Sprintf("claims optimal cost %d, %s claims optimal cost %d",
					o.s.TotalNOPs, bestName, bestOpt),
			})
		}
	}
	if bestOpt >= 0 {
		for _, o := range outs {
			if !o.s.Optimal && o.s.TotalNOPs < bestOpt {
				divs = append(divs, Divergence{
					Check: "optimal-beaten", Candidate: o.name,
					Detail: fmt.Sprintf("curtailed schedule costs %d, below the proven optimum %d of %s",
						o.s.TotalNOPs, bestOpt, bestName),
				})
			}
		}
	}

	// Certificate checks: every root lower bound must be admissible (no
	// schedule, and in particular no proven optimum, costs less than it),
	// and a zero gap is a claim of optimality that must hold against the
	// proven optimum — a loose bound is allowed, a lying one is not.
	for _, o := range outs {
		if o.s.RootLB > o.s.TotalNOPs {
			divs = append(divs, Divergence{
				Check: "bound-admissible", Candidate: o.name,
				Detail: fmt.Sprintf("root lower bound %d exceeds the returned schedule's cost %d",
					o.s.RootLB, o.s.TotalNOPs),
			})
		}
	}
	if bestOpt >= 0 {
		for _, o := range outs {
			if o.s.RootLB > bestOpt {
				divs = append(divs, Divergence{
					Check: "bound-admissible", Candidate: o.name,
					Detail: fmt.Sprintf("root lower bound %d exceeds the proven optimum %d of %s",
						o.s.RootLB, bestOpt, bestName),
				})
			}
			if o.s.Gap == 0 && o.s.TotalNOPs != bestOpt {
				divs = append(divs, Divergence{
					Check: "gap-sound", Candidate: o.name,
					Detail: fmt.Sprintf("gap 0 certifies cost %d as optimal, but %s proves the optimum is %d",
						o.s.TotalNOPs, bestName, bestOpt),
				})
			}
			if o.s.Gap > 0 && o.s.TotalNOPs-o.s.Gap > bestOpt {
				divs = append(divs, Divergence{
					Check: "gap-sound", Candidate: o.name,
					Detail: fmt.Sprintf("gap %d certifies the optimum within [%d, %d], but %s proves it is %d",
						o.s.Gap, o.s.TotalNOPs-o.s.Gap, o.s.TotalNOPs, bestName, bestOpt),
				})
			}
		}
	}

	// Exhaustive reference: on blocks small enough to enumerate, the
	// best legal schedule (and, smaller still, the best of all n!
	// permutations) must cost exactly the claimed optimum.
	if bestOpt >= 0 && !cfg.DisableExhaustive {
		if n := exhaustive.CountLegal(g, cfg.ExhaustiveOrders+1); n <= cfg.ExhaustiveOrders {
			ref := exhaustive.SearchLegal(g, m, cfg.ExhaustiveOrders+1)
			if ref.Found && !ref.Exhausted && ref.Best.TotalNOPs != bestOpt {
				divs = append(divs, Divergence{
					Check: "exhaustive-legal", Candidate: bestName,
					Detail: fmt.Sprintf("search claims optimal cost %d, exhaustive legal enumeration finds %d over %d orders",
						bestOpt, ref.Best.TotalNOPs, n),
				})
			}
		}
		if g.N <= cfg.ExhaustivePermutations {
			ref := exhaustive.SearchExhaustive(g, m, 0)
			if ref.Found && ref.Best.TotalNOPs != bestOpt {
				divs = append(divs, Divergence{
					Check: "exhaustive-perm", Candidate: bestName,
					Detail: fmt.Sprintf("search claims optimal cost %d, full permutation search finds %d",
						bestOpt, ref.Best.TotalNOPs),
				})
			}
		}
	}
	return divs
}

// checkSchedule proves one emitted schedule legal and semantically
// consistent: shape, topological legality, hazard-freedom under all
// three delay mechanisms, and cost exactly as claimed.
func checkSchedule(g *dag.Graph, m *machine.Machine, name string, s *core.Schedule) []Divergence {
	var divs []Divergence
	bad := func(format string, args ...any) {
		divs = append(divs, Divergence{
			Check: "schedule-legal", Candidate: name,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	if len(s.Order) != g.N || len(s.Eta) != g.N || len(s.Pipes) != g.N {
		bad("schedule shape %d/%d/%d does not match block size %d",
			len(s.Order), len(s.Eta), len(s.Pipes), g.N)
		return divs
	}
	if !g.IsLegalOrder(s.Order) {
		bad("order %v violates dependences", s.Order)
		return divs
	}
	if s.Optimal != (s.Stopped == nil) {
		bad("Optimal=%t inconsistent with Stopped=%v", s.Optimal, s.Stopped)
	}
	if s.RootLB < 0 || s.Gap < 0 {
		bad("negative certificate: RootLB=%d Gap=%d", s.RootLB, s.Gap)
	}
	if s.Optimal && s.Gap != 0 {
		bad("proven-optimal result carries nonzero gap %d", s.Gap)
	}
	in := sim.Input{Graph: g, M: m, Order: s.Order, Eta: s.Eta, Pipes: s.Pipes}
	if err := sim.Verify(in, s.TotalNOPs, s.Ticks); err != nil {
		divs = append(divs, Divergence{
			Check: "sim-verify", Candidate: name,
			Detail: err.Error(),
		})
	}
	return divs
}
