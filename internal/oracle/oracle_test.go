package oracle

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"pipesched/internal/core"
	"pipesched/internal/dag"
	"pipesched/internal/ir"
	"pipesched/internal/listsched"
	"pipesched/internal/machine"
	"pipesched/internal/nopins"
)

// mustGraph parses and builds a block, failing the test on error.
func mustGraph(t *testing.T, text string) *dag.Graph {
	t.Helper()
	b, err := ir.ParseBlock(text)
	if err != nil {
		t.Fatalf("parse block: %v", err)
	}
	g, err := dag.Build(b)
	if err != nil {
		t.Fatalf("build dag: %v", err)
	}
	return g
}

// suboptimalSeedPair returns a (graph, machine) pair on which the
// ByHeight list schedule is strictly costlier than the optimum, so a
// scheduler that just prices the seed and claims optimality is wrong.
// The two stores are WAW-ordered and the Mul's latency shadow is only
// hidden when the search floats the second dependence chain first.
func suboptimalSeedPair(t *testing.T) (*dag.Graph, *machine.Machine) {
	t.Helper()
	g := mustGraph(t, `repro:
  1: Const 57
  2: Store #v0, @1
  3: Const 95
  5: Mul @3, @3
  6: Store #v0, @5`)
	m := machine.SimulationMachine()

	seedOrder := listsched.Schedule(g, listsched.ByHeight)
	seed, err := nopins.NewEvaluator(g, m, nopins.AssignFixed).EvaluateOrder(seedOrder)
	if err != nil {
		t.Fatalf("seed order illegal: %v", err)
	}
	opt, err := core.Find(g, m, core.Options{})
	if err != nil {
		t.Fatalf("find: %v", err)
	}
	if !opt.Optimal || seed.TotalNOPs <= opt.TotalNOPs {
		t.Fatalf("test pair needs a suboptimal seed: seed=%d optimal=%d (optimal=%t)",
			seed.TotalNOPs, opt.TotalNOPs, opt.Optimal)
	}
	return g, m
}

// findCandidate is the honest reference candidate.
func findCandidate() Candidate {
	return Candidate{Name: "find", Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
		return core.Find(g, m, core.Options{})
	}}
}

// hasCheck reports whether divs contains a finding with the given check
// name implicating the given candidate ("" matches any candidate).
func hasCheck(divs []Divergence, check, candidate string) bool {
	for _, d := range divs {
		if d.Check == check && (candidate == "" || d.Candidate == candidate) {
			return true
		}
	}
	return false
}

func TestCheckPairCleanOnPresets(t *testing.T) {
	blocks := []string{
		`chain:
  1: Load #a
  2: Mul @1, @1
  3: Add @2, 4
  4: Store #b, @3`,
		`two-chains:
  1: Const 57
  2: Store #v0, @1
  3: Const 95
  5: Mul @3, @3
  6: Store #v0, @5`,
		`single:
  1: Load #x`,
	}
	machines := []*machine.Machine{
		machine.SimulationMachine(),
		machine.ExampleMachine(),
		machine.UnpipelinedMachine(),
		machine.DeepMachine(),
	}
	for _, text := range blocks {
		g := mustGraph(t, text)
		for _, m := range machines {
			if divs := CheckPair(g, m, Config{}); len(divs) != 0 {
				t.Errorf("%s on %s: unexpected divergences %v", g.Block.Label, m.Name, divs)
			}
		}
	}
}

func TestCheckPairCatchesFalseOptimalityClaim(t *testing.T) {
	g, m := suboptimalSeedPair(t)

	// The broken scheduler prices the list-schedule seed honestly but
	// claims the result is optimal. Legality and simulation agree with
	// the claim, so only the differential can catch it.
	seedClaimsOptimal := Candidate{Name: "seed-claims-optimal",
		Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			order := listsched.Schedule(g, listsched.ByHeight)
			r, err := nopins.NewEvaluator(g, m, nopins.AssignFixed).EvaluateOrder(order)
			if err != nil {
				return nil, err
			}
			return &core.Schedule{
				Order: r.Order, Eta: r.Eta, Pipes: r.Pipes,
				TotalNOPs: r.TotalNOPs, Ticks: r.Ticks, Optimal: true,
			}, nil
		}}

	divs := CheckPair(g, m, Config{Candidates: []Candidate{findCandidate(), seedClaimsOptimal}})
	if !hasCheck(divs, "optimal-agree", "seed-claims-optimal") {
		t.Fatalf("false optimality claim not caught: %v", divs)
	}
}

func TestCheckPairCatchesIllegalOrder(t *testing.T) {
	g, m := suboptimalSeedPair(t)

	reversed := Candidate{Name: "reversed",
		Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			s, err := core.Find(g, m, core.Options{})
			if err != nil {
				return nil, err
			}
			n := len(s.Order)
			rev := &core.Schedule{
				Order: make([]int, n), Eta: make([]int, n), Pipes: make([]int, n),
				TotalNOPs: s.TotalNOPs, Ticks: s.Ticks, Optimal: s.Optimal,
			}
			for i := 0; i < n; i++ {
				rev.Order[i] = s.Order[n-1-i]
				rev.Eta[i] = s.Eta[n-1-i]
				rev.Pipes[i] = s.Pipes[n-1-i]
			}
			return rev, nil
		}}

	divs := CheckPair(g, m, Config{Candidates: []Candidate{findCandidate(), reversed}})
	if !hasCheck(divs, "schedule-legal", "reversed") {
		t.Fatalf("illegal order not caught: %v", divs)
	}
}

func TestCheckPairCatchesWrongCostClaim(t *testing.T) {
	g, m := suboptimalSeedPair(t)

	inflated := Candidate{Name: "inflated",
		Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			s, err := core.Find(g, m, core.Options{})
			if err != nil {
				return nil, err
			}
			s.TotalNOPs++ // claimed cost no longer matches the simulator
			s.Ticks++
			return s, nil
		}}

	divs := CheckPair(g, m, Config{Candidates: []Candidate{inflated}})
	if !hasCheck(divs, "sim-verify", "inflated") {
		t.Fatalf("wrong cost claim not caught: %v", divs)
	}
}

func TestCheckPairCatchesOptimalBeaten(t *testing.T) {
	g, m := suboptimalSeedPair(t)

	// A curtailed candidate claiming a cost below the proven optimum is
	// impossible; either the claim or the optimality proof is broken.
	underclaims := Candidate{Name: "underclaims",
		Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			s, err := core.Find(g, m, core.Options{})
			if err != nil {
				return nil, err
			}
			s.TotalNOPs--
			s.Ticks--
			s.Optimal = false
			s.Stopped = errors.New("fake curtailment")
			return s, nil
		}}

	divs := CheckPair(g, m, Config{Candidates: []Candidate{findCandidate(), underclaims}})
	if !hasCheck(divs, "optimal-beaten", "underclaims") {
		t.Fatalf("impossible sub-optimum claim not caught: %v", divs)
	}
}

func TestCheckPairCatchesUpperBoundViolation(t *testing.T) {
	g, m := suboptimalSeedPair(t)

	// Claim a (simulator-consistent) schedule costlier than the seed by
	// pricing the seed order and padding the final instruction. The extra
	// η is real padding — the simulator accepts over-padded schedules
	// only under the NOP mechanism, so sim-verify fires too, but the
	// upper-bound check must flag it independently.
	costlier := Candidate{Name: "costlier",
		Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			order := listsched.Schedule(g, listsched.ByHeight)
			r, err := nopins.NewEvaluator(g, m, nopins.AssignFixed).EvaluateOrder(order)
			if err != nil {
				return nil, err
			}
			eta := append([]int(nil), r.Eta...)
			eta[len(eta)-1] += 2
			return &core.Schedule{
				Order: r.Order, Eta: eta, Pipes: r.Pipes,
				TotalNOPs: r.TotalNOPs + 2, Ticks: r.Ticks + 2, Optimal: true,
			}, nil
		}}

	divs := CheckPair(g, m, Config{Candidates: []Candidate{costlier}})
	if !hasCheck(divs, "upper-bound", "costlier") {
		t.Fatalf("upper-bound violation not caught: %v", divs)
	}
}

func TestCheckPairCatchesInadmissibleBound(t *testing.T) {
	g, m := suboptimalSeedPair(t)

	// An honest schedule with a lying root bound: the claimed lower bound
	// sits above the proven optimum, so it cannot be admissible.
	overbounds := Candidate{Name: "overbounds",
		Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			s, err := core.Find(g, m, core.Options{})
			if err != nil {
				return nil, err
			}
			s.RootLB = s.TotalNOPs + 1
			return s, nil
		}}

	divs := CheckPair(g, m, Config{Candidates: []Candidate{findCandidate(), overbounds}})
	if !hasCheck(divs, "bound-admissible", "overbounds") {
		t.Fatalf("inadmissible root bound not caught: %v", divs)
	}
}

func TestCheckPairCatchesUnsoundGap(t *testing.T) {
	g, m := suboptimalSeedPair(t)

	// A curtailed candidate pricing the (suboptimal) seed but attaching a
	// gap-0 certificate claims the seed is optimal without saying so in
	// Optimal — the gap-soundness check must see through it.
	fakeCertificate := Candidate{Name: "fake-certificate",
		Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			order := listsched.Schedule(g, listsched.ByHeight)
			r, err := nopins.NewEvaluator(g, m, nopins.AssignFixed).EvaluateOrder(order)
			if err != nil {
				return nil, err
			}
			return &core.Schedule{
				Order: r.Order, Eta: r.Eta, Pipes: r.Pipes,
				TotalNOPs: r.TotalNOPs, Ticks: r.Ticks,
				Stopped: errors.New("fake curtailment"),
			}, nil
		}}

	divs := CheckPair(g, m, Config{Candidates: []Candidate{findCandidate(), fakeCertificate}})
	if !hasCheck(divs, "gap-sound", "fake-certificate") {
		t.Fatalf("unsound gap-0 certificate not caught: %v", divs)
	}

	// A nonzero gap that brackets the optimum too high is just as unsound.
	tooTight := Candidate{Name: "too-tight",
		Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			order := listsched.Schedule(g, listsched.ByHeight)
			r, err := nopins.NewEvaluator(g, m, nopins.AssignFixed).EvaluateOrder(order)
			if err != nil {
				return nil, err
			}
			opt, err := core.Find(g, m, core.Options{})
			if err != nil {
				return nil, err
			}
			gap := r.TotalNOPs - opt.TotalNOPs - 1 // excludes the true optimum
			return &core.Schedule{
				Order: r.Order, Eta: r.Eta, Pipes: r.Pipes,
				TotalNOPs: r.TotalNOPs, Ticks: r.Ticks,
				RootLB: r.TotalNOPs - gap, Gap: gap,
				Stopped: errors.New("fake curtailment"),
			}, nil
		}}

	divs = CheckPair(g, m, Config{Candidates: []Candidate{findCandidate(), tooTight}})
	if !hasCheck(divs, "gap-sound", "too-tight") {
		t.Fatalf("over-tight gap bracket not caught: %v", divs)
	}
}

func TestCheckPairReportsCandidateError(t *testing.T) {
	g, m := suboptimalSeedPair(t)
	failing := Candidate{Name: "failing",
		Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
			return nil, errors.New("boom")
		}}
	divs := CheckPair(g, m, Config{Candidates: []Candidate{failing}})
	if !hasCheck(divs, "candidate-error", "failing") {
		t.Fatalf("candidate error not reported: %v", divs)
	}
}

func TestRunCleanSoak(t *testing.T) {
	var buf bytes.Buffer
	sum, err := Run(RunConfig{Blocks: 25, Machines: 4, Seed: 11, Artifacts: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs != 25 {
		t.Errorf("pairs = %d, want 25", sum.Pairs)
	}
	if sum.Tuples == 0 {
		t.Error("no tuples counted")
	}
	if sum.Divergences != 0 {
		t.Errorf("unexpected divergences: %s", sum.Checks())
	}
	if buf.Len() != 0 {
		t.Errorf("clean run wrote artifacts: %q", buf.String())
	}
	if got := sum.Checks(); got != "none" {
		t.Errorf("Checks() = %q, want none", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Summary {
		sum, err := Run(RunConfig{Blocks: 10, Machines: 3, Seed: 99, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(), run()
	if a.Pairs != b.Pairs || a.Tuples != b.Tuples || a.Divergences != b.Divergences {
		t.Errorf("two runs with the same seed disagree: %+v vs %+v", a, b)
	}
}

func TestRunCatchesBrokenSchedulerAndEmitsArtifacts(t *testing.T) {
	var buf bytes.Buffer
	cfg := RunConfig{
		Blocks: 30, Machines: 2, Seed: 5,
		DisableMetamorphic: true,
		Artifacts:          &buf,
		Check: Config{
			DisableExhaustive: true,
			Candidates: []Candidate{
				findCandidate(),
				{Name: "seed-claims-optimal",
					Run: func(g *dag.Graph, m *machine.Machine) (*core.Schedule, error) {
						order := listsched.Schedule(g, listsched.ByHeight)
						r, err := nopins.NewEvaluator(g, m, nopins.AssignFixed).EvaluateOrder(order)
						if err != nil {
							return nil, err
						}
						return &core.Schedule{
							Order: r.Order, Eta: r.Eta, Pipes: r.Pipes,
							TotalNOPs: r.TotalNOPs, Ticks: r.Ticks, Optimal: true,
						}, nil
					}},
			},
		},
	}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Divergences == 0 {
		t.Fatal("broken scheduler survived the soak")
	}
	if len(sum.Artifacts) != sum.Divergences {
		t.Errorf("artifacts %d != divergences %d", len(sum.Artifacts), sum.Divergences)
	}

	// Every artifact line must be a self-contained JSON repro.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != sum.Divergences {
		t.Fatalf("JSONL lines %d != divergences %d", len(lines), sum.Divergences)
	}
	for _, line := range lines {
		var a Artifact
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatalf("artifact line does not parse: %v\n%s", err, line)
		}
		if a.Seed != 5 {
			t.Errorf("artifact seed = %d, want 5", a.Seed)
		}
		full, err := ir.ParseBlock(a.BlockText)
		if err != nil {
			t.Fatalf("artifact block text does not parse: %v", err)
		}
		shrunk, err := ir.ParseBlock(a.ShrunkText)
		if err != nil {
			t.Fatalf("artifact shrunk text does not parse: %v", err)
		}
		if shrunk.Len() > full.Len() {
			t.Errorf("shrunk block (%d tuples) larger than original (%d)", shrunk.Len(), full.Len())
		}
		var m machine.Machine
		if err := json.Unmarshal(a.MachineJSON, &m); err != nil {
			t.Fatalf("artifact machine JSON does not parse: %v", err)
		}

		// The shrunken counterexample must still trigger the same check.
		g, err := dag.Build(shrunk)
		if err != nil {
			t.Fatalf("shrunk block does not build: %v", err)
		}
		if !hasCheck(CheckPair(g, &m, cfg.Check), a.Check, "") {
			t.Errorf("shrunk repro no longer triggers %s:\n%s", a.Check, a.ShrunkText)
		}
	}
}
