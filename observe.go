// Observability surface: search tracing, the telemetry metric registry,
// and the live introspection endpoints. Telemetry is off by default —
// every instrumentation point in the pipeline costs one atomic pointer
// load until EnableTelemetry is called (BenchmarkTelemetryDisabled
// guards that overhead).
//
// Typical service setup:
//
//	t := pipesched.EnableTelemetry()
//	ts, _ := pipesched.ServeTelemetry(":9090", t)
//	defer ts.Close() // or ts.Shutdown(ctx) to drain scrapes
//	// ts.Addr() is the bound address (useful with ":0")
//	// curl addr/metrics       → Prometheus text format
//	// curl addr/debug/vars    → expvar JSON
//	// curl addr/debug/pprof/  → live profiles
//
// Typical single-block search debugging:
//
//	tr := &pipesched.SearchTrace{Limit: 5000}
//	c, _ := pipesched.Compile(src, m, pipesched.Options{Trace: tr})
//	data, _ := pipesched.ChromeTrace(tr, c.Scheduled.Label)
//	os.WriteFile("search.json", data, 0o644) // open in chrome://tracing
package pipesched

import (
	"io"
	"net/http"

	"pipesched/internal/core"
	"pipesched/internal/telemetry"
)

// SearchTrace records the first Limit events of one search when attached
// to Options.Trace; safe to share with a parallel search.
type SearchTrace = core.SearchTrace

// TraceEvent is one recorded search step.
type TraceEvent = core.TraceEvent

// TraceAction labels one search event (place, improve, the prune
// classes, curtail).
type TraceAction = core.TraceAction

// Telemetry is the pipeline's resolved metric set: counters for every
// search action and quality rung, per-stage duration histograms, and the
// structured-event sink registration point (SetSink).
type Telemetry = telemetry.Metrics

// TelemetryEvent is one structured observability event.
type TelemetryEvent = telemetry.Event

// TelemetrySink receives structured events (see NewJSONLTelemetrySink).
type TelemetrySink = telemetry.Sink

// EnableTelemetry installs a fresh metrics registry as the process-wide
// pipeline telemetry and returns its metric set. All Compile/Schedule
// variants in all goroutines record into it until DisableTelemetry.
func EnableTelemetry() *Telemetry {
	return telemetry.Install(telemetry.NewMetrics(telemetry.NewRegistry()))
}

// DisableTelemetry turns pipeline telemetry back off (the default).
func DisableTelemetry() { telemetry.Uninstall() }

// ActiveTelemetry returns the installed metric set, or nil when
// telemetry is off.
func ActiveTelemetry() *Telemetry { return telemetry.Active() }

// TelemetryHandler exposes t's registry over HTTP: /metrics (Prometheus
// text), /debug/vars (expvar), /debug/pprof/ and /healthz.
func TelemetryHandler(t *Telemetry) http.Handler {
	return telemetry.Handler(t.Registry())
}

// TelemetryServer is a running introspection endpoint; it exposes the
// bound address (Addr), an immediate Close and a graceful Shutdown so
// services can drain the metrics listener alongside their own work.
type TelemetryServer = telemetry.Server

// ServeTelemetry starts TelemetryHandler on addr in the background and
// returns the running server handle (Addr/Close/Shutdown).
func ServeTelemetry(addr string, t *Telemetry) (*TelemetryServer, error) {
	return telemetry.Serve(addr, t.Registry())
}

// NewJSONLTelemetrySink returns a sink writing one JSON object per event
// line to w; register it with Telemetry.SetSink.
func NewJSONLTelemetrySink(w io.Writer) TelemetrySink {
	return telemetry.NewJSONLSink(w)
}

// ChromeTrace converts a recorded search trace into Chrome trace_event
// JSON: the flame graph is the explored search tree, with prunes and
// incumbent improvements as instant events. Open the output in
// chrome://tracing or https://ui.perfetto.dev.
func ChromeTrace(t *SearchTrace, block string) ([]byte, error) {
	return telemetry.ChromeTrace(t, block)
}

// Tracer mints and finishes distributed-trace spans; see EnableTracing.
type Tracer = telemetry.Tracer

// TracerConfig sizes a Tracer: node identity, flight-recorder ring
// capacity, and the dump directory/rate-limit for black-box dumps.
type TracerConfig = telemetry.TracerConfig

// TraceSpanRecord is one completed distributed-trace span, as stored in
// the flight-recorder ring and the JSONL sink (Kind "trace").
type TraceSpanRecord = telemetry.SpanRecord

// EnableTracing installs a process-wide distributed tracer bound to t's
// registry and sink (t may be nil: spans then only feed the flight
// recorder). Like telemetry, tracing is off by default and every
// potential span costs one atomic pointer load until this is called
// (BenchmarkTracingDisabled guards that overhead).
func EnableTracing(t *Telemetry, cfg TracerConfig) *Tracer {
	return telemetry.InstallTracer(telemetry.NewTracer(t, cfg))
}

// DisableTracing turns distributed tracing back off (the default).
func DisableTracing() { telemetry.UninstallTracer() }

// ActiveTracer returns the installed tracer, or nil when tracing is
// off. All Tracer methods tolerate a nil receiver.
func ActiveTracer() *Tracer { return telemetry.ActiveTracer() }

// TraceSpanFromEvent recovers a span record from a sink event; the
// second result is false for non-trace events.
func TraceSpanFromEvent(e TelemetryEvent) (TraceSpanRecord, bool) {
	return telemetry.SpanFromEvent(e)
}

// ChromeTraceRequest converts one request's distributed-trace spans
// (read from a JSONL sink file or a flight-recorder dump) into Chrome
// trace_event JSON: each fleet node is a process row, hedged replica
// attempts pack onto parallel thread rows, and breaker/degradation/
// failover points render in place. See also `pipesched trace`.
func ChromeTraceRequest(spans []TraceSpanRecord) ([]byte, error) {
	return telemetry.ChromeTraceRequest(spans)
}
